package energyte

import (
	"testing"

	"github.com/nice-go/nice/controller"
	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/openflow"
	"github.com/nice-go/nice/topo"
)

const threshold = 1000

func newApp(fix FixLevel, polls int) (*App, *topo.Topology) {
	t, _, _, _ := topo.Triangle()
	return New(fix, t, threshold, polls), t
}

func newCtx() *controller.Context { return controller.NewContext(nil) }

func flowTo(dst openflow.EthAddr, dstIP openflow.IPAddr) openflow.Header {
	return openflow.Header{
		EthSrc: topo.MACHostA, EthDst: dst, EthType: openflow.EthTypeIPv4,
		IPSrc: topo.IPHostA, IPDst: dstIP, IPProto: openflow.IPProtoTCP,
		TPSrc: 5555, TPDst: 80,
	}
}

func statsReply(app *App, tx uint64) {
	app.StatsReply(newCtx(), 1, sym.ConcreteStats([]openflow.PortStats{{Port: 2, TxBytes: tx}}))
}

func dispatch(app *App, ctx *controller.Context, sw openflow.SwitchID, h openflow.Header, port openflow.PortID) {
	app.PacketIn(ctx, sw, sym.ConcretePacket(h, port), 7, openflow.ReasonNoMatch)
}

func TestPollBudget(t *testing.T) {
	app, _ := newApp(Buggy, 2)
	for i := 0; i < 2; i++ {
		if len(app.EnvEvents()) != 1 {
			t.Fatalf("poll %d not offered", i)
		}
		ctx := newCtx()
		app.EnvApply(ctx, "poll_stats")
		if len(ctx.Messages()) != 1 || ctx.Messages()[0].Type != openflow.MsgStatsRequest {
			t.Fatalf("poll %d messages: %v", i, ctx.Messages())
		}
	}
	if len(app.EnvEvents()) != 0 {
		t.Error("poll budget not enforced")
	}
}

func TestStatsSetEnergyState(t *testing.T) {
	app, _ := newApp(Buggy, 0)
	statsReply(app, threshold-1)
	if app.high || app.globalTable != AlwaysOn {
		t.Error("low stats left high state")
	}
	statsReply(app, threshold)
	if !app.high || app.globalTable != OnDemand {
		t.Error("threshold crossing not detected")
	}
}

func TestLowLoadRoutesAlwaysOn(t *testing.T) {
	app, tp := newApp(Buggy, 0)
	ctx := newCtx()
	dispatch(app, ctx, 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	msgs := ctx.Messages()
	// BUG-VIII: install at s1 and s2, but no packet_out.
	if len(msgs) != 2 {
		t.Fatalf("messages: %v", msgs)
	}
	alwaysOn, _ := tp.LinkPort(1, 2)
	if msgs[0].Switch != 1 || msgs[0].Rule.Actions[0].Port != alwaysOn {
		t.Errorf("ingress rule wrong: %v", msgs[0])
	}
	if msgs[1].Switch != 2 {
		t.Errorf("egress rule wrong: %v", msgs[1])
	}
}

func TestFixVIIIReleasesPacket(t *testing.T) {
	app, _ := newApp(FixVIII, 0)
	ctx := newCtx()
	dispatch(app, ctx, 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	msgs := ctx.Messages()
	if len(msgs) != 3 || msgs[2].Type != openflow.MsgPacketOut {
		t.Fatalf("FixVIII must release the packet: %v", msgs)
	}
}

func TestBuggyIgnoresIntermediateSwitches(t *testing.T) {
	app, _ := newApp(FixVIII, 0)
	ctx := newCtx()
	dispatch(app, ctx, 2, flowTo(topo.MACHostB, topo.IPHostB), 2)
	if len(ctx.Messages()) != 0 {
		t.Errorf("pre-FixIX handler acted on a non-ingress packet_in: %v", ctx.Messages())
	}
}

func TestFixIXHandlesTransitPackets(t *testing.T) {
	app, _ := newApp(FixIX, 0)
	h := flowTo(topo.MACHostB, topo.IPHostB)
	dispatch(app, newCtx(), 1, h, 1) // establish the flow at the ingress
	ctx := newCtx()
	dispatch(app, ctx, 2, h, 2) // stuck at the egress switch
	msgs := ctx.Messages()
	if len(msgs) != 2 || msgs[1].Type != openflow.MsgPacketOut {
		t.Fatalf("transit packet not handled: %v", msgs)
	}
	if msgs[1].Switch != 2 {
		t.Error("release sent to the wrong switch")
	}
}

func TestBugXGlobalTableMisroutesUnderHighLoad(t *testing.T) {
	app, tp := newApp(FixIX, 0) // BUG-X level
	statsReply(app, threshold+100)
	ctx := newCtx()
	dispatch(app, ctx, 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	onDemand, _ := tp.LinkPort(1, 3)
	if got := ctx.Messages()[0].Rule.Actions[0].Port; got != onDemand {
		t.Errorf("buggy app routed flow 0 out %v, want the on-demand port %v (global table)", got, onDemand)
	}
}

func TestFixXAlternatesUnderHighLoad(t *testing.T) {
	app, tp := newApp(FixX, 0)
	statsReply(app, threshold+100)
	alwaysOn, _ := tp.LinkPort(1, 2)
	onDemand, _ := tp.LinkPort(1, 3)

	ctx1 := newCtx()
	dispatch(app, ctx1, 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	if got := ctx1.Messages()[0].Rule.Actions[0].Port; got != alwaysOn {
		t.Errorf("flow 0 out %v, want always-on %v", got, alwaysOn)
	}
	ctx2 := newCtx()
	dispatch(app, ctx2, 1, flowTo(topo.MACHostC, topo.IPHostC), 1)
	if got := ctx2.Messages()[0].Rule.Actions[0].Port; got != onDemand {
		t.Errorf("flow 1 out %v, want on-demand %v", got, onDemand)
	}
	// The on-demand path installs at all three hops.
	if len(ctx2.Messages()) != 3+1 { // 3 installs + packet_out
		t.Errorf("on-demand path installed %d messages", len(ctx2.Messages()))
	}
}

func TestLoadDropRecomputesAndTearsDown(t *testing.T) {
	app, tp := newApp(FixX, 0)
	statsReply(app, threshold+100)
	dispatch(app, newCtx(), 1, flowTo(topo.MACHostB, topo.IPHostB), 1) // flow 0: always-on
	dispatch(app, newCtx(), 1, flowTo(topo.MACHostC, topo.IPHostC), 1) // flow 1: on-demand

	ctx := newCtx()
	app.StatsReply(ctx, 1, sym.ConcreteStats([]openflow.PortStats{{Port: 2, TxBytes: 0}}))
	var deletes, installs int
	for _, m := range ctx.Messages() {
		switch {
		case m.Cmd == openflow.FlowDelete && m.Switch == 3:
			deletes++
		case m.Cmd == openflow.FlowAdd && m.Switch == 1:
			installs++
		}
	}
	if deletes != 1 {
		t.Errorf("detour teardown deletes = %d, want 1", deletes)
	}
	if installs != 1 {
		t.Errorf("recompute reinstalls = %d, want 1 (the on-demand flow)", installs)
	}
	alwaysOn, _ := tp.LinkPort(1, 2)
	for _, m := range ctx.Messages() {
		if m.Cmd == openflow.FlowAdd && m.Rule.Actions[0].Port != alwaysOn {
			t.Error("recomputed flow not on the always-on path")
		}
	}
	// After the recompute, s3 is on no path: the pre-FixXI handler
	// ignores its packet_ins.
	ctx2 := newCtx()
	dispatch(app, ctx2, 3, flowTo(topo.MACHostC, topo.IPHostC), 1)
	if len(ctx2.Messages()) != 0 {
		t.Error("pre-FixXI handler acted on an off-path packet_in")
	}
}

func TestFixXIDrainsOffPathPackets(t *testing.T) {
	app, _ := newApp(FixXI, 0)
	statsReply(app, threshold+100)
	dispatch(app, newCtx(), 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	dispatch(app, newCtx(), 1, flowTo(topo.MACHostC, topo.IPHostC), 1)
	statsReply(app, 0) // teardown

	ctx := newCtx()
	dispatch(app, ctx, 3, flowTo(topo.MACHostC, topo.IPHostC), 1)
	msgs := ctx.Messages()
	if len(msgs) == 0 {
		t.Fatal("FixXI still ignores off-path packet_ins")
	}
	last := msgs[len(msgs)-1]
	if last.Type != openflow.MsgPacketOut {
		t.Errorf("off-path packet not released: %v", msgs)
	}
}

func TestStatsSymbolicBranching(t *testing.T) {
	app, _ := newApp(Buggy, 0)
	tr := sym.NewTrace()
	ctx := controller.NewSymContext(tr)
	st := sym.SymbolicStats([]openflow.PortID{1, 2, 3}, []uint64{0, 0, 0})
	app.Clone().(*App).StatsReply(ctx, 1, st)
	if len(tr.Branches()) != 1 {
		t.Fatalf("stats handler recorded %d branches, want 1 (threshold test)", len(tr.Branches()))
	}
}

func TestCloneIsolation(t *testing.T) {
	app, _ := newApp(Buggy, 1)
	k := app.StateKey()
	c := app.Clone().(*App)
	statsReply(c, threshold+5)
	dispatch(c, newCtx(), 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	if app.StateKey() != k {
		t.Error("clone mutation leaked into original")
	}
}
