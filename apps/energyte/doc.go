// Package energyte reproduces the energy-efficient traffic-engineering
// application of §8.3 — a REsPoNse-style controller (Vasić et al.,
// CoNEXT 2011) with two precomputed routing tables: an always-on path
// that carries all traffic under low demand and an on-demand path that
// absorbs additional traffic under high demand. The controller samples
// port statistics to estimate load; under high load new flows should
// split evenly over the two paths.
//
// On the Triangle preset topology the always-on path is s1→s2 and the
// on-demand path is s1→s3→s2. The published code had four defects,
// reproduced behind staged fix levels:
//
//	BUG-VIII the first packet of a new flow is never released at the
//	         ingress switch (NoForgottenPackets)
//	BUG-IX   a packet outruns the rule being installed at the second
//	         switch on its path; the handler implicitly ignores the
//	         resulting packet_in (NoForgottenPackets)
//	BUG-X    the routing table is chosen globally in the statistics
//	         handler, so under high load every new flow takes the
//	         on-demand path (UseCorrectRoutingTable)
//	BUG-XI   when load falls, on-demand rules are torn down; a packet
//	         in flight reaches an off-path switch whose packet_in the
//	         handler ignores (NoForgottenPackets)
package energyte
