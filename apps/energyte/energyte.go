package energyte

import (
	"fmt"

	"github.com/nice-go/nice/controller"
	"github.com/nice-go/nice/internal/canon"
	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/openflow"
	"github.com/nice-go/nice/topo"
)

// FixLevel selects how many of the four published bugs are repaired.
type FixLevel int

const (
	// Buggy is the code as published.
	Buggy FixLevel = iota
	// FixVIII releases the triggering packet after installing the path.
	FixVIII
	// FixIX handles packets arriving at non-ingress switches instead
	// of ignoring them ("A correct 'fix' should either handle packets
	// arriving at intermediate switches, or use barriers", §8.3).
	FixIX
	// FixX abandons the global routing-table variable and chooses the
	// table per flow ("A 'fix' was to abandon the extra table and
	// choose the routing table on per-flow basis", §8.3).
	FixX
	// FixXI handles packets arriving at switches that are no longer on
	// any active path (same repair as FixIX applied after teardown).
	FixXI
	// Fixed is the fully repaired application.
	Fixed = FixXI
)

// Path names the two routing tables.
type Path int

const (
	// AlwaysOn is the direct s1→s2 path.
	AlwaysOn Path = iota
	// OnDemand is the s1→s3→s2 detour.
	OnDemand
)

func (p Path) String() string {
	if p == OnDemand {
		return "on-demand"
	}
	return "always-on"
}

// App is the TE controller application.
type App struct {
	controller.BaseApp
	controller.VersionCounter

	fix  FixLevel
	topo *topo.Topology

	// Static routing knowledge derived from the Triangle preset.
	ingress   openflow.SwitchID // s1
	egress    openflow.SwitchID // s2
	detour    openflow.SwitchID // s3
	threshold uint64

	// high is the perceived energy state ("the network's perceived
	// energy state", §8.3), set by the statistics handler.
	high bool
	// globalTable is BUG-X's "extra routing table" field: the stats
	// handler overwrites it and (in buggy mode) every new flow follows
	// it instead of splitting.
	globalTable Path
	// flowCount numbers new flows for the per-flow alternating split.
	flowCount int
	// flows records the path assigned to each flow.
	flows map[openflow.Flow]Path
	// pollsLeft bounds the environment stats-poll transition.
	pollsLeft int

	// UseBarriers selects the paper's alternative BUG-IX remedy: after
	// installing a path, hold the triggering packet until every
	// downstream switch acknowledges a barrier, then release it ("use
	// 'barriers' (where available) to ensure that rule installation
	// completes at all intermediate hops before allowing the packet to
	// depart the ingress switch", §8.3).
	UseBarriers bool
	// pending holds packets awaiting barrier acknowledgments.
	pending []pendingRelease

	// borrowed marks flows and pending as shared with the instance this
	// one was forked from (controller.ForkableApp); the first mutation
	// of either copies both. Scalar fields need no guard — Fork copies
	// the struct.
	borrowed bool
}

// pendingRelease is one parked packet: where it is buffered, how to
// release it, and the outstanding barrier xids.
type pendingRelease struct {
	Sw      openflow.SwitchID
	Buf     openflow.BufferID
	Out     openflow.PortID
	Waiting map[int]bool
}

// New builds the application for the Triangle preset topology.
func New(fix FixLevel, t *topo.Topology, threshold uint64, polls int) *App {
	return &App{
		fix: fix, topo: t,
		ingress: 1, egress: 2, detour: 3,
		threshold: threshold,
		flows:     make(map[openflow.Flow]Path),
		pollsLeft: polls,
	}
}

// Name implements controller.App.
func (a *App) Name() string { return fmt.Sprintf("energyte(fix=%d)", int(a.fix)) }

// Clone implements controller.App with a full deep copy (used by
// discover_packets / discover_stats throwaway handler runs and the
// deep-clone reference path; the checker's copy-on-write fast path uses
// Fork).
func (a *App) Clone() controller.App {
	c := *a
	c.flows = make(map[openflow.Flow]Path, len(a.flows))
	for k, v := range a.flows {
		c.flows[k] = v
	}
	c.pending = make([]pendingRelease, len(a.pending))
	for i, p := range a.pending {
		w := make(map[int]bool, len(p.Waiting))
		for x := range p.Waiting {
			w[x] = true
		}
		p.Waiting = w
		c.pending[i] = p
	}
	c.borrowed = false
	return &c
}

// Fork implements controller.ForkableApp: an O(1) copy borrowing the
// flow table and the pending-release queue; ensureOwned deep-copies
// both before the first mutation on the fork. The receiver must be
// frozen afterwards, per the ForkableApp ownership rules.
func (a *App) Fork() controller.App {
	c := *a
	c.borrowed = true
	return &c
}

// ensureOwned deep-copies borrowed mutable state before the first
// write. pending's Waiting maps are included: BarrierReply deletes from
// them in place.
func (a *App) ensureOwned() {
	if !a.borrowed {
		return
	}
	flows := make(map[openflow.Flow]Path, len(a.flows))
	for k, v := range a.flows {
		flows[k] = v
	}
	pending := make([]pendingRelease, len(a.pending))
	for i, p := range a.pending {
		w := make(map[int]bool, len(p.Waiting))
		for x := range p.Waiting {
			w[x] = true
		}
		p.Waiting = w
		pending[i] = p
	}
	a.flows, a.pending = flows, pending
	a.borrowed = false
}

// StateKey implements controller.App.
func (a *App) StateKey() string {
	return fmt.Sprintf("high=%t table=%v n=%d polls=%d flows=%s pend=%s",
		a.high, a.globalTable, a.flowCount, a.pollsLeft,
		canon.String(a.flows), canon.String(a.pending))
}

// EnvEvents implements controller.EnvApp: the bounded periodic
// statistics poll ("The application learns the link utilizations by
// querying the switches for port statistics").
func (a *App) EnvEvents() []string {
	if a.pollsLeft > 0 {
		return []string{"poll_stats"}
	}
	return nil
}

// EnvApply issues the port-statistics query to the ingress switch.
func (a *App) EnvApply(ctx *controller.Context, event string) {
	if event != "poll_stats" || a.pollsLeft <= 0 {
		return
	}
	a.BumpStateVersion()
	a.pollsLeft--
	ctx.RequestStats(a.ingress, openflow.PortNone)
}

// StatsReply estimates load from the always-on link's transmit counter.
// The comparison runs through ctx.If, so discover_stats finds the
// threshold crossing with symbolic counters (§3.3).
//
// BUG-X lives here: the published code also rewrote the global routing
// table so "the remainder of the code simply reference[s] this extra
// table when deciding where to route a flow".
func (a *App) StatsReply(ctx *controller.Context, sw openflow.SwitchID, stats *sym.Stats) {
	if sw != a.ingress {
		return
	}
	a.BumpStateVersion()
	alwaysOnPort, _ := a.topo.LinkPort(a.ingress, a.egress)
	wasHigh := a.high
	a.high = ctx.If(stats.TxBytes(alwaysOnPort).Ge(sym.Concrete(a.threshold)))
	a.globalTable = AlwaysOn
	if a.high {
		a.globalTable = OnDemand
	}
	if wasHigh && !a.high {
		// Load fell: recompute every flow onto its always-on path and
		// tear down the on-demand detour so switch s3 can sleep.
		// BUG-XI: a packet already in flight on the detour reaches s3
		// after its rules are gone, and the handler "ignores the
		// packet because it fails to find this switch in any of those
		// lists" (§8.3) — s3 is on no recomputed path.
		a.ensureOwned()
		for f := range a.flows {
			if a.flows[f] != AlwaysOn {
				a.flows[f] = AlwaysOn
				out, _ := a.topo.LinkPort(a.ingress, a.egress)
				ctx.InstallRule(a.ingress, openflow.Rule{
					Priority: 10,
					Match:    flowMatchFromFlow(f),
					Actions:  []openflow.Action{openflow.Output(out)},
				})
			}
		}
		ctx.DeleteRule(a.detour, openflow.MatchAll())
	}
}

// flowMatchFromFlow rebuilds the per-flow rule pattern from a flow key.
func flowMatchFromFlow(f openflow.Flow) openflow.Match {
	return openflow.MatchAll().
		With(openflow.FieldEthSrc, uint64(f.EthSrc)).
		With(openflow.FieldEthDst, uint64(f.EthDst)).
		With(openflow.FieldEthType, uint64(f.EthType))
}

// PacketIn routes the first packet of each flow: pick a table, install a
// rule at every switch on the path, and (fixed) release the packet.
func (a *App) PacketIn(ctx *controller.Context, sw openflow.SwitchID, pkt *sym.Packet,
	buf openflow.BufferID, _ openflow.PacketInReason) {

	if sw != a.ingress {
		// A packet reached the controller from an intermediate or
		// off-path switch. The published handler implicitly ignores
		// it (BUG-IX at path switches, BUG-XI after teardown),
		// leaving it in the switch buffer forever.
		needed := FixIX
		if !a.onAnyPath(sw) {
			needed = FixXI
		}
		if a.fix >= needed {
			a.handleTransit(ctx, sw, pkt, buf)
		}
		return
	}

	flow := pkt.Header().Flow()
	path, known := sym.LookupFlow(ctx.Trace(), a.flows, pkt)
	if !known {
		path = a.choosePath()
		a.ensureOwned()
		a.BumpStateVersion()
		a.flowCount++
		a.flows[flow] = path
	}
	a.installPath(ctx, path, pkt, buf)
}

// choosePath is the routing-table decision. The published code (BUG-X)
// consults the global table the stats handler maintains; the fix decides
// per flow, alternating new flows across the two tables under high load.
func (a *App) choosePath() Path {
	if a.fix < FixX {
		return a.globalTable
	}
	if !a.high {
		return AlwaysOn
	}
	if a.flowCount%2 == 0 {
		return AlwaysOn
	}
	return OnDemand
}

// onAnyPath reports whether a switch lies on a currently active path.
func (a *App) onAnyPath(sw openflow.SwitchID) bool {
	if sw == a.ingress || sw == a.egress {
		return true
	}
	for _, p := range a.flows {
		if p == OnDemand && sw == a.detour {
			return true
		}
	}
	return false
}

// pathSwitches lists the switches of a path, ingress first.
func (a *App) pathSwitches(p Path) []openflow.SwitchID {
	if p == OnDemand {
		return []openflow.SwitchID{a.ingress, a.detour, a.egress}
	}
	return []openflow.SwitchID{a.ingress, a.egress}
}

// installPath installs the flow's rule at each hop. Rules are issued
// ingress-first, exactly the pattern BUG-IX exploits: "with
// communication delays in installing the rules, the packet could reach
// the second switch before the rule is installed".
func (a *App) installPath(ctx *controller.Context, p Path, pkt *sym.Packet, buf openflow.BufferID) {
	hdr := pkt.Header()
	sws := a.pathSwitches(p)
	var firstOut openflow.PortID
	for i, sw := range sws {
		var out openflow.PortID
		if i == len(sws)-1 {
			out = a.egressPort(hdr)
		} else {
			out, _ = a.topo.LinkPort(sw, sws[i+1])
		}
		if i == 0 {
			firstOut = out
		}
		ctx.InstallRule(sw, openflow.Rule{
			Priority: 10,
			Match:    flowMatch(hdr),
			Actions:  []openflow.Action{openflow.Output(out)},
		})
	}
	if a.fix < FixVIII {
		return // BUG-VIII: the triggering packet is never released.
	}
	if a.UseBarriers && len(sws) > 1 && buf != openflow.BufferNone {
		// Barrier remedy for BUG-IX: park the packet until every
		// downstream switch confirms its rule is in place.
		waiting := make(map[int]bool, len(sws)-1)
		for _, sw := range sws[1:] {
			waiting[ctx.Barrier(sw)] = true
		}
		a.ensureOwned()
		a.BumpStateVersion()
		a.pending = append(a.pending, pendingRelease{
			Sw: a.ingress, Buf: buf, Out: firstOut, Waiting: waiting,
		})
		return
	}
	// BUG-VIII fix: release the packet that triggered the handler.
	ctx.PacketOut(a.ingress, buf, openflow.Output(firstOut))
}

// BarrierReply releases parked packets once their path is confirmed.
func (a *App) BarrierReply(ctx *controller.Context, _ openflow.SwitchID, xid int) {
	for i := range a.pending {
		p := &a.pending[i]
		if !p.Waiting[xid] {
			continue
		}
		a.ensureOwned()
		p = &a.pending[i] // re-point at the owned copy before mutating
		a.BumpStateVersion()
		delete(p.Waiting, xid)
		if len(p.Waiting) == 0 {
			ctx.PacketOut(p.Sw, p.Buf, openflow.Output(p.Out))
			a.pending = append(a.pending[:i:i], a.pending[i+1:]...)
		}
		return
	}
}

// handleTransit releases a packet stuck at a non-ingress switch by
// forwarding it along its flow's path (or dropping it cleanly when the
// flow is unknown after a teardown).
func (a *App) handleTransit(ctx *controller.Context, sw openflow.SwitchID, pkt *sym.Packet, buf openflow.BufferID) {
	if buf == openflow.BufferNone {
		return
	}
	hdr := pkt.Header()
	path, known := sym.LookupFlow(ctx.Trace(), a.flows, pkt)
	if !known {
		ctx.PacketOut(sw, buf, openflow.Drop())
		return
	}
	sws := a.pathSwitches(path)
	for i, s := range sws {
		if s != sw {
			continue
		}
		var out openflow.PortID
		if i == len(sws)-1 {
			out = a.egressPort(hdr)
		} else {
			out, _ = a.topo.LinkPort(s, sws[i+1])
		}
		ctx.InstallRule(s, openflow.Rule{
			Priority: 10,
			Match:    flowMatch(hdr),
			Actions:  []openflow.Action{openflow.Output(out)},
		})
		ctx.PacketOut(s, buf, openflow.Output(out))
		return
	}
	ctx.PacketOut(sw, buf, openflow.Drop())
}

// egressPort finds the port on the egress switch facing the packet's
// destination host.
func (a *App) egressPort(hdr openflow.Header) openflow.PortID {
	for _, h := range a.topo.Hosts() {
		if h.MAC == hdr.EthDst {
			return h.Locations[0].Port
		}
	}
	// Unknown destination: fall back to the first host port on the
	// egress switch (bounded scenarios never hit this).
	return 1
}

// flowMatch is the per-flow rule pattern (MAC pair + EtherType).
func flowMatch(hdr openflow.Header) openflow.Match {
	return openflow.MatchAll().
		With(openflow.FieldEthSrc, uint64(hdr.EthSrc)).
		With(openflow.FieldEthDst, uint64(hdr.EthDst)).
		With(openflow.FieldEthType, uint64(hdr.EthType))
}
