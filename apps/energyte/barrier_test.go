package energyte

import (
	"testing"

	"github.com/nice-go/nice/controller"
	"github.com/nice-go/nice/openflow"
	"github.com/nice-go/nice/topo"
)

func TestBarrierVariantParksPacketUntilAcks(t *testing.T) {
	app, _ := newApp(FixVIII, 0)
	app.UseBarriers = true
	statsReply(app, threshold+100) // high load: BUG-X level routes on-demand (3 hops)
	ctx := newCtx()
	dispatch(app, ctx, 1, flowTo(topo.MACHostB, topo.IPHostB), 1)

	msgs := ctx.Messages()
	var installs, barriers, packetOuts int
	var xids []int
	for _, m := range msgs {
		switch m.Type {
		case openflow.MsgFlowMod:
			installs++
		case openflow.MsgBarrierRequest:
			barriers++
			xids = append(xids, m.Xid)
		case openflow.MsgPacketOut:
			packetOuts++
		}
	}
	if installs != 3 || barriers != 2 || packetOuts != 0 {
		t.Fatalf("installs=%d barriers=%d packet_outs=%d (want 3/2/0)", installs, barriers, packetOuts)
	}
	if len(app.pending) != 1 {
		t.Fatalf("pending releases: %d", len(app.pending))
	}

	// First ack: still parked. Second ack: released.
	ctx2 := newCtx()
	app.BarrierReply(ctx2, 3, xids[0])
	if len(ctx2.Messages()) != 0 || len(app.pending) != 1 {
		t.Fatal("released after only one barrier ack")
	}
	ctx3 := newCtx()
	app.BarrierReply(ctx3, 2, xids[1])
	if len(ctx3.Messages()) != 1 || ctx3.Messages()[0].Type != openflow.MsgPacketOut {
		t.Fatalf("release messages: %v", ctx3.Messages())
	}
	if len(app.pending) != 0 {
		t.Error("pending entry not cleared")
	}
}

func TestBarrierReplyForUnknownXidIsNoOp(t *testing.T) {
	app, _ := newApp(FixVIII, 0)
	app.UseBarriers = true
	ctx := newCtx()
	app.BarrierReply(ctx, 2, 999)
	if len(ctx.Messages()) != 0 {
		t.Error("unknown xid produced output")
	}
}

func TestBarrierVariantCloneIsolation(t *testing.T) {
	app, _ := newApp(FixVIII, 0)
	app.UseBarriers = true
	dispatch(app, newCtx(), 1, flowTo(topo.MACHostB, topo.IPHostB), 1)
	if len(app.pending) != 0 {
		// Always-on path has one downstream switch: one barrier.
		t.Logf("pending after always-on install: %d", len(app.pending))
	}
	c := app.Clone().(*App)
	var xid int
	for i := range c.pending {
		for x := range c.pending[i].Waiting {
			xid = x
		}
	}
	c.BarrierReply(controller.NewContext(nil), 2, xid)
	if len(app.pending) == len(c.pending) {
		t.Error("clone ack mutated original's pending set (or no pending existed)")
	}
}
