package loadbalancer

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/nice-go/nice/controller"
	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/openflow"
	"github.com/nice-go/nice/topo"
)

// FixLevel selects how many of the four published bugs are repaired, in
// paper order. Table 2's per-bug scenarios use the level that fixes all
// earlier bugs.
type FixLevel int

const (
	// Buggy is the code as published: all four bugs present.
	Buggy FixLevel = iota
	// FixIV releases the packet that triggered packet_in.
	FixIV
	// FixV installs inspection rules before deleting the old wildcard
	// rules ("the program should reverse the two steps", §8.2).
	FixV
	// FixVI discards proxied ARP requests from the switch buffer.
	FixVI
	// FixVII keeps unknown flows on the old policy during a transition
	// so a duplicate SYN cannot split a connection (the paper leaves
	// the fix open; this is the conservative repair).
	FixVII
	// Fixed is the fully repaired application.
	Fixed = FixVII
)

// Replica describes one server behind the virtual IP.
type Replica struct {
	MAC  openflow.EthAddr
	IP   openflow.IPAddr
	Port openflow.PortID
}

// Rule priorities, lowest to highest: wildcard forwarding, inspection
// (must shadow wildcards during transitions), per-connection microflow,
// ARP redirection.
const (
	prioWildcard  = 5
	prioInspect   = 6
	prioMicroflow = 8
	prioARP       = 10
)

// App is the load-balancer controller application.
type App struct {
	controller.BaseApp
	controller.VersionCounter

	fix FixLevel

	sw         openflow.SwitchID
	clientPort openflow.PortID
	vip        openflow.IPAddr
	vmac       openflow.EthAddr
	replicas   []Replica

	// policy indexes the replica receiving new connections.
	policy int
	// transitioning is true between a reconfiguration and its
	// completion (bounded scenarios never complete it; the window is
	// where the bugs live).
	transitioning bool
	// oldPolicy is the pre-transition policy, serving ongoing flows.
	oldPolicy int
	// inspected maps connections seen during the transition to their
	// replica index.
	inspected map[openflow.Flow]int
	// reconfigsLeft bounds the environment transition.
	reconfigsLeft int

	// borrowed marks inspected as shared with the instance this one was
	// forked from (controller.ForkableApp); the first inspection write
	// copies it. Scalar fields need no guard — Fork copies the struct.
	borrowed bool
}

// VirtualMAC is the MAC the virtual IP resolves to.
var VirtualMAC = openflow.MakeEthAddr(0x02, 0x00, 0x00, 0x00, 0x00, 0xfe)

// New builds the application. The topology must be the LoadBalancer
// preset shape: client on port 1 of a single switch, replicas behind it.
func New(fix FixLevel, t *topo.Topology, vip openflow.IPAddr, reconfigs int) *App {
	lb := &App{
		fix:           fix,
		sw:            1,
		clientPort:    1,
		vip:           vip,
		vmac:          VirtualMAC,
		inspected:     make(map[openflow.Flow]int),
		reconfigsLeft: reconfigs,
	}
	for _, h := range t.Hosts() {
		if h.Name == "client" {
			continue
		}
		lb.replicas = append(lb.replicas, Replica{MAC: h.MAC, IP: h.IP, Port: h.Locations[0].Port})
	}
	if len(lb.replicas) < 2 {
		panic("loadbalancer: need at least two replicas")
	}
	return lb
}

// Name implements controller.App.
func (a *App) Name() string { return fmt.Sprintf("loadbalancer(fix=%d)", int(a.fix)) }

// Clone implements controller.App with a full deep copy (used by
// discover_packets' throwaway handler runs and the deep-clone reference
// path; the checker's copy-on-write fast path uses Fork).
func (a *App) Clone() controller.App {
	c := *a
	c.replicas = append([]Replica(nil), a.replicas...)
	c.inspected = make(map[openflow.Flow]int, len(a.inspected))
	for k, v := range a.inspected {
		c.inspected[k] = v
	}
	c.borrowed = false
	return &c
}

// EmitsTo implements controller.EmissionScope: every handler emission
// targets the single load-balancer switch a.sw, regardless of which
// switch's message is being handled.
func (a *App) EmitsTo(openflow.SwitchID) ([]openflow.SwitchID, bool) {
	return []openflow.SwitchID{a.sw}, true
}

// Fork implements controller.ForkableApp: an O(1) copy borrowing the
// inspected-connection map (replicas are immutable after New and always
// shared). The receiver must be frozen afterwards, per the ForkableApp
// ownership rules.
func (a *App) Fork() controller.App {
	c := *a
	c.borrowed = true
	return &c
}

// ensureOwned copies the borrowed inspected map before the first write.
func (a *App) ensureOwned() {
	if !a.borrowed {
		return
	}
	m := make(map[openflow.Flow]int, len(a.inspected))
	for k, v := range a.inspected {
		m[k] = v
	}
	a.inspected = m
	a.borrowed = false
}

// StateKey implements controller.App with a hand-written sorted
// rendering (the reflective canon.String walk over the inspected map
// re-ran on every connection inspection and dominated the AppKey cost).
func (a *App) StateKey() string {
	flows := make([]openflow.Flow, 0, len(a.inspected))
	for f := range a.inspected {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flowLess(flows[i], flows[j]) })
	b := make([]byte, 0, 48+40*len(flows))
	b = append(b, "policy="...)
	b = strconv.AppendInt(b, int64(a.policy), 10)
	b = append(b, " old="...)
	b = strconv.AppendInt(b, int64(a.oldPolicy), 10)
	b = append(b, " trans="...)
	b = strconv.AppendBool(b, a.transitioning)
	b = append(b, " rc="...)
	b = strconv.AppendInt(b, int64(a.reconfigsLeft), 10)
	b = append(b, " insp{"...)
	for i, f := range flows {
		if i > 0 {
			b = append(b, ' ')
		}
		b = appendFlowKey(b, f)
		b = append(b, '>')
		b = strconv.AppendInt(b, int64(a.inspected[f]), 10)
	}
	b = append(b, '}')
	return string(b)
}

// flowLess orders flows for the canonical inspected rendering.
func flowLess(a, b openflow.Flow) bool {
	switch {
	case a.EthSrc != b.EthSrc:
		return a.EthSrc < b.EthSrc
	case a.EthDst != b.EthDst:
		return a.EthDst < b.EthDst
	case a.EthType != b.EthType:
		return a.EthType < b.EthType
	case a.IPSrc != b.IPSrc:
		return a.IPSrc < b.IPSrc
	case a.IPDst != b.IPDst:
		return a.IPDst < b.IPDst
	case a.IPProto != b.IPProto:
		return a.IPProto < b.IPProto
	case a.TPSrc != b.TPSrc:
		return a.TPSrc < b.TPSrc
	default:
		return a.TPDst < b.TPDst
	}
}

func appendFlowKey(b []byte, f openflow.Flow) []byte {
	b = strconv.AppendUint(b, uint64(f.EthSrc), 16)
	b = append(b, '>')
	b = strconv.AppendUint(b, uint64(f.EthDst), 16)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.EthType), 16)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(uint32(f.IPSrc)), 16)
	b = append(b, '>')
	b = strconv.AppendUint(b, uint64(uint32(f.IPDst)), 16)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.IPProto), 10)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(f.TPSrc), 10)
	b = append(b, '>')
	b = strconv.AppendUint(b, uint64(f.TPDst), 10)
	return b
}

// SwitchJoin installs the steady-state rule set: ARP redirection to the
// controller, wildcard forwarding of the two client IP-space halves to
// the current policy's replica, and return-path rewriting per replica.
func (a *App) SwitchJoin(ctx *controller.Context, sw openflow.SwitchID) {
	if sw != a.sw {
		return
	}
	ctx.InstallRule(sw, openflow.Rule{
		Priority: prioARP,
		Match:    openflow.MatchAll().With(openflow.FieldEthType, uint64(openflow.EthTypeARP)),
		Actions:  []openflow.Action{openflow.ToController()},
	})
	a.installWildcards(ctx)
	for _, r := range a.replicas {
		ctx.InstallRule(sw, openflow.Rule{
			Priority: prioWildcard,
			Match: openflow.MatchAll().
				With(openflow.FieldEthType, uint64(openflow.EthTypeIPv4)).
				With(openflow.FieldIPSrc, uint64(r.IP)),
			Actions: []openflow.Action{
				openflow.SetField(openflow.FieldEthSrc, uint64(a.vmac)),
				openflow.SetField(openflow.FieldIPSrc, uint64(a.vip)),
				openflow.Output(a.clientPort),
			},
		})
	}
}

// installWildcards divides the client address space into two /1 halves,
// both currently pointing at the policy replica (the Wang et al. design
// adjusts these prefixes to shift load).
func (a *App) installWildcards(ctx *controller.Context) {
	r := a.replicas[a.policy]
	for _, half := range []openflow.IPAddr{0, openflow.MakeIPAddr(128, 0, 0, 0)} {
		ctx.InstallRule(a.sw, openflow.Rule{
			Priority: prioWildcard,
			Match: openflow.MatchAll().
				With(openflow.FieldEthType, uint64(openflow.EthTypeIPv4)).
				With(openflow.FieldIPDst, uint64(a.vip)).
				WithIPSrcPrefix(half, 1),
			Actions: a.forwardActions(r),
		})
	}
}

func (a *App) forwardActions(r Replica) []openflow.Action {
	return []openflow.Action{
		openflow.SetField(openflow.FieldEthDst, uint64(r.MAC)),
		openflow.SetField(openflow.FieldIPDst, uint64(r.IP)),
		openflow.Output(r.Port),
	}
}

// EnvEvents implements controller.EnvApp: one bounded reconfiguration.
func (a *App) EnvEvents() []string {
	if a.reconfigsLeft > 0 && !a.transitioning {
		return []string{"reconfigure"}
	}
	return nil
}

// EnvApply flips the policy and starts the transition. The order of the
// two rule updates is the heart of BUG-V: the published code removed the
// old wildcard forwarding rules and then installed the inspection rules;
// packets arriving in between match nothing, reach the controller as
// NO_MATCH and are ignored. The fix reverses the steps (the inspection
// rules shadow the wildcards at higher priority, so there is no gap).
func (a *App) EnvApply(ctx *controller.Context, event string) {
	if event != "reconfigure" || a.reconfigsLeft <= 0 {
		return
	}
	a.BumpStateVersion()
	a.reconfigsLeft--
	a.oldPolicy = a.policy
	a.policy = (a.policy + 1) % len(a.replicas)
	a.transitioning = true

	deletePattern := openflow.MatchAll().
		With(openflow.FieldEthType, uint64(openflow.EthTypeIPv4)).
		With(openflow.FieldIPDst, uint64(a.vip))

	if a.fix >= FixV {
		a.installInspectRules(ctx)
		ctx.DeleteRuleStrict(a.sw, wildcardMatch(a.vip, 0), prioWildcard)
		ctx.DeleteRuleStrict(a.sw, wildcardMatch(a.vip, openflow.MakeIPAddr(128, 0, 0, 0)), prioWildcard)
		return
	}
	// Published order: delete everything forwarding to the VIP, then
	// install the inspection rules.
	ctx.DeleteRule(a.sw, deletePattern)
	a.installInspectRules(ctx)
}

func wildcardMatch(vip openflow.IPAddr, half openflow.IPAddr) openflow.Match {
	return openflow.MatchAll().
		With(openflow.FieldEthType, uint64(openflow.EthTypeIPv4)).
		With(openflow.FieldIPDst, uint64(vip)).
		WithIPSrcPrefix(half, 1)
}

func (a *App) installInspectRules(ctx *controller.Context) {
	for _, half := range []openflow.IPAddr{0, openflow.MakeIPAddr(128, 0, 0, 0)} {
		ctx.InstallRule(a.sw, openflow.Rule{
			Priority: prioInspect,
			Match: openflow.MatchAll().
				With(openflow.FieldEthType, uint64(openflow.EthTypeIPv4)).
				With(openflow.FieldIPDst, uint64(a.vip)).
				WithIPSrcPrefix(half, 1),
			Actions: []openflow.Action{openflow.ToController()},
		})
	}
}

// PacketIn handles ARP proxying and per-flow inspection during policy
// transitions. Packet-dependent branches go through ctx.If /
// sym.LookupFlow so discover_packets sees the handler's equivalence
// classes (ARP request, ARP other, TCP SYN to VIP, TCP non-SYN to VIP,
// known flow, other traffic).
func (a *App) PacketIn(ctx *controller.Context, sw openflow.SwitchID, pkt *sym.Packet,
	buf openflow.BufferID, reason openflow.PacketInReason) {

	if sw != a.sw {
		return
	}
	// BUG-V: the published handler ignores packets with an unexpected
	// reason code ("As written, the packet_in handler ignores such
	// (unexpected) packets, causing the switch to hold them until the
	// buffer fills", §8.2). The reason is not packet data, so this is a
	// concrete branch at every fix level; the repair is the update
	// ordering in EnvApply.
	if reason != openflow.ReasonAction {
		return
	}

	if ctx.If(pkt.EthType().EqConst(uint64(openflow.EthTypeARP))) {
		a.handleARP(ctx, pkt, buf)
		return
	}
	if ctx.If(pkt.EthType().EqConst(uint64(openflow.EthTypeIPv4)).
		And(pkt.IPProto().EqConst(uint64(openflow.IPProtoTCP))).
		And(pkt.IPDst().EqConst(uint64(a.vip)))) {
		a.handleConnection(ctx, pkt, buf)
		return
	}
	// Anything else the switch escalated is deliberately discarded —
	// the application is only buggy in the four published ways.
	a.discard(ctx, buf)
}

// handleARP proxies ARP requests for the virtual IP. BUG-VI: the reply
// is correct, but the buffered request is never discarded.
func (a *App) handleARP(ctx *controller.Context, pkt *sym.Packet, buf openflow.BufferID) {
	if !ctx.If(pkt.ArpOp().EqConst(uint64(openflow.ArpRequest)).
		And(pkt.IPDst().EqConst(uint64(a.vip)))) {
		a.discard(ctx, buf)
		return
	}
	reply := openflow.Header{
		EthSrc:  a.vmac,
		EthDst:  openflow.EthAddr(pkt.EthSrc().C),
		EthType: openflow.EthTypeARP,
		ArpOp:   openflow.ArpReply,
		IPSrc:   a.vip,
		IPDst:   openflow.IPAddr(uint32(pkt.IPSrc().C)),
		Payload: "arp-reply",
	}
	ctx.PacketOutData(a.sw, reply, openflow.PortNone, openflow.Output(pkt.InPort()))
	if a.fix >= FixVI {
		a.discard(ctx, buf)
	}
}

// handleConnection inspects one packet of a client connection during a
// transition and pins the connection to a replica with a microflow rule.
func (a *App) handleConnection(ctx *controller.Context, pkt *sym.Packet, buf openflow.BufferID) {
	flow := pkt.Header().Flow()

	choice := a.policy
	if a.transitioning {
		if idx, ok := sym.LookupFlow(ctx.Trace(), a.inspected, pkt); ok {
			// A connection already pinned during this transition
			// stays where it is.
			choice = idx
		} else if a.fix >= FixVII {
			// Conservative repair: unknown flows stay on the old
			// policy for the whole transition, so a retransmitted
			// SYN cannot jump replicas.
			choice = a.oldPolicy
		} else if ctx.If(pkt.TCPFlags().And(sym.Concrete(uint64(openflow.TCPSyn))).NeConst(0)) {
			// Published logic: "a SYN packet implies the flow is new
			// and should follow the new load-balancing policy".
			choice = a.policy
		} else {
			// Mid-connection packet of an ongoing transfer.
			choice = a.oldPolicy
		}
		a.ensureOwned()
		a.BumpStateVersion()
		a.inspected[flow] = choice
	}

	r := a.replicas[choice]
	ctx.InstallRule(a.sw, openflow.Rule{
		Priority: prioMicroflow,
		Match: openflow.MatchAll().
			With(openflow.FieldEthType, uint64(openflow.EthTypeIPv4)).
			With(openflow.FieldIPProto, uint64(openflow.IPProtoTCP)).
			With(openflow.FieldIPSrc, uint64(uint32(pkt.IPSrc().C))).
			With(openflow.FieldIPDst, uint64(a.vip)).
			With(openflow.FieldTPSrc, pkt.TPSrc().C).
			With(openflow.FieldTPDst, pkt.TPDst().C),
		Actions: a.forwardActions(r),
	})
	if a.fix >= FixIV {
		// BUG-IV fix: also tell the switch what to do with the packet
		// that triggered this handler.
		ctx.PacketOut(a.sw, buf, a.forwardActions(r)...)
	}
}

// discard releases a buffered packet with an explicit drop.
func (a *App) discard(ctx *controller.Context, buf openflow.BufferID) {
	if buf == openflow.BufferNone {
		return
	}
	ctx.PacketOut(a.sw, buf, openflow.Drop())
}
