package loadbalancer

import (
	"testing"

	"github.com/nice-go/nice/controller"
	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/openflow"
	"github.com/nice-go/nice/topo"
)

var vip = openflow.MakeIPAddr(10, 0, 0, 100)

func newApp(fix FixLevel, reconfigs int) *App {
	t, _, _, _ := topo.LoadBalancer()
	return New(fix, t, vip, reconfigs)
}

func newCtx() *controller.Context { return controller.NewContext(nil) }

func synTo(ip openflow.IPAddr, flags uint8) openflow.Header {
	return openflow.Header{
		EthSrc: topo.MACHostA, EthDst: VirtualMAC, EthType: openflow.EthTypeIPv4,
		IPSrc: topo.IPHostA, IPDst: ip, IPProto: openflow.IPProtoTCP,
		TPSrc: 5555, TPDst: 80, TCPFlags: flags,
	}
}

func dispatch(app *App, ctx *controller.Context, h openflow.Header, reason openflow.PacketInReason) {
	app.PacketIn(ctx, 1, sym.ConcretePacket(h, 1), 7, reason)
}

func TestJoinInstallsSteadyStateRules(t *testing.T) {
	app := newApp(Buggy, 1)
	ctx := newCtx()
	app.SwitchJoin(ctx, 1)
	var arp, wild, ret int
	for _, m := range ctx.Messages() {
		if m.Type != openflow.MsgFlowMod {
			t.Fatalf("non-flow_mod at join: %v", m)
		}
		switch m.Rule.Priority {
		case prioARP:
			arp++
		case prioWildcard:
			if _, hasDst := m.Rule.Match.Value(openflow.FieldIPDst); hasDst {
				wild++
			} else {
				ret++
			}
		}
	}
	if arp != 1 || wild != 2 || ret != 2 {
		t.Errorf("rule census: arp=%d wildcard=%d return=%d", arp, wild, ret)
	}
}

func TestWildcardHalvesCoverClientSpace(t *testing.T) {
	app := newApp(Buggy, 1)
	ctx := newCtx()
	app.SwitchJoin(ctx, 1)
	ft := openflow.NewFlowTable()
	for _, m := range ctx.Messages() {
		ft.Install(m.Rule)
	}
	for _, src := range []openflow.IPAddr{
		openflow.MakeIPAddr(10, 0, 0, 1),
		openflow.MakeIPAddr(200, 1, 2, 3),
	} {
		h := synTo(vip, openflow.TCPSyn)
		h.EthType = openflow.EthTypeIPv4
		h.IPSrc = src
		idx, ok := ft.Lookup(h, 1)
		if !ok {
			t.Fatalf("client %v misses every rule", src)
		}
		r := ft.Rules()[idx]
		if r.Priority != prioWildcard {
			t.Errorf("client %v hit priority %d", src, r.Priority)
		}
	}
}

func TestBuggyReconfigureDeletesBeforeInstalling(t *testing.T) {
	app := newApp(Buggy, 1)
	ctx := newCtx()
	app.EnvApply(ctx, "reconfigure")
	msgs := ctx.Messages()
	if len(msgs) != 3 {
		t.Fatalf("messages: %v", msgs)
	}
	if msgs[0].Cmd != openflow.FlowDelete {
		t.Error("published order must delete first (BUG-V)")
	}
	if msgs[1].Rule.Priority != prioInspect || msgs[2].Rule.Priority != prioInspect {
		t.Error("inspection rules missing")
	}
	if !app.transitioning || app.policy != 1 {
		t.Error("transition state not entered")
	}
}

func TestFixedReconfigureInstallsFirst(t *testing.T) {
	app := newApp(FixV, 1)
	ctx := newCtx()
	app.EnvApply(ctx, "reconfigure")
	msgs := ctx.Messages()
	if len(msgs) != 4 {
		t.Fatalf("messages: %v", msgs)
	}
	if msgs[0].Type != openflow.MsgFlowMod || msgs[0].Cmd != openflow.FlowAdd {
		t.Error("fixed order must install inspection rules first")
	}
	if msgs[2].Cmd != openflow.FlowDeleteStrict || msgs[3].Cmd != openflow.FlowDeleteStrict {
		t.Error("fixed order must delete the wildcards strictly afterwards")
	}
}

func TestReconfigureBudget(t *testing.T) {
	app := newApp(Buggy, 1)
	if len(app.EnvEvents()) != 1 {
		t.Fatal("reconfigure not offered")
	}
	app.EnvApply(newCtx(), "reconfigure")
	if len(app.EnvEvents()) != 0 {
		t.Error("reconfigure offered again mid-transition")
	}
}

func TestIgnoresNoMatchReason(t *testing.T) {
	// The published handler ignores unexpected reason codes at every
	// fix level (the BUG-V repair is the update ordering).
	for _, fix := range []FixLevel{Buggy, Fixed} {
		app := newApp(fix, 1)
		ctx := newCtx()
		dispatch(app, ctx, synTo(vip, openflow.TCPSyn), openflow.ReasonNoMatch)
		if len(ctx.Messages()) != 0 {
			t.Errorf("fix=%d: handler acted on a NO_MATCH packet", fix)
		}
	}
}

func TestBuggyConnectionHandlingForgetsPacket(t *testing.T) {
	app := newApp(Buggy, 1)
	ctx := newCtx()
	dispatch(app, ctx, synTo(vip, openflow.TCPSyn), openflow.ReasonAction)
	msgs := ctx.Messages()
	if len(msgs) != 1 || msgs[0].Type != openflow.MsgFlowMod {
		t.Fatalf("BUG-IV: want just the microflow install, got %v", msgs)
	}
}

func TestFixIVReleasesPacket(t *testing.T) {
	app := newApp(FixIV, 1)
	ctx := newCtx()
	dispatch(app, ctx, synTo(vip, openflow.TCPSyn), openflow.ReasonAction)
	msgs := ctx.Messages()
	if len(msgs) != 2 || msgs[1].Type != openflow.MsgPacketOut {
		t.Fatalf("FixIV must emit a packet_out, got %v", msgs)
	}
	if msgs[1].Buffer != 7 {
		t.Error("packet_out does not release the triggering buffer")
	}
}

func TestARPProxyReplyAndBugVI(t *testing.T) {
	arpReq := openflow.Header{
		EthSrc: topo.MACHostA, EthDst: openflow.BroadcastEth,
		EthType: openflow.EthTypeARP, ArpOp: openflow.ArpRequest,
		IPSrc: topo.IPHostA, IPDst: vip,
	}
	// Buggy: reply but never discard the buffered request.
	app := newApp(FixV, 1)
	ctx := newCtx()
	dispatch(app, ctx, arpReq, openflow.ReasonAction)
	msgs := ctx.Messages()
	if len(msgs) != 1 || msgs[0].Type != openflow.MsgPacketOut {
		t.Fatalf("messages: %v", msgs)
	}
	if msgs[0].Packet.Header.ArpOp != openflow.ArpReply || msgs[0].Packet.Header.IPSrc != vip {
		t.Errorf("reply malformed: %v", msgs[0].Packet.Header)
	}
	// Fixed: also a discard for the buffer.
	app2 := newApp(FixVI, 1)
	ctx2 := newCtx()
	dispatch(app2, ctx2, arpReq, openflow.ReasonAction)
	msgs2 := ctx2.Messages()
	if len(msgs2) != 2 || msgs2[1].Buffer != 7 {
		t.Fatalf("FixVI must discard the request: %v", msgs2)
	}
}

func TestARPNonRequestDiscarded(t *testing.T) {
	app := newApp(Buggy, 1)
	ctx := newCtx()
	rep := openflow.Header{EthType: openflow.EthTypeARP, ArpOp: openflow.ArpReply, IPDst: vip}
	dispatch(app, ctx, rep, openflow.ReasonAction)
	msgs := ctx.Messages()
	if len(msgs) != 1 || msgs[0].Actions[0].Type != openflow.ActionDrop {
		t.Fatalf("ARP reply not discarded cleanly: %v", msgs)
	}
}

func TestTransitionPolicyChoice(t *testing.T) {
	// During a transition, SYNs follow the new policy, other packets
	// the old one (the published logic behind BUG-VII).
	app := newApp(FixVI, 1)
	app.EnvApply(newCtx(), "reconfigure")

	ctxSyn := newCtx()
	dispatch(app, ctxSyn, synTo(vip, openflow.TCPSyn), openflow.ReasonAction)
	synPort := microflowOutPort(t, ctxSyn.Messages()[0])
	if synPort != app.replicas[1].Port {
		t.Errorf("SYN routed to port %v, want new policy replica", synPort)
	}

	app2 := newApp(FixVI, 1)
	app2.EnvApply(newCtx(), "reconfigure")
	ctxAck := newCtx()
	ack := synTo(vip, openflow.TCPAck)
	ack.TPSrc = 6666 // a different connection
	dispatch(app2, ctxAck, ack, openflow.ReasonAction)
	ackPort := microflowOutPort(t, ctxAck.Messages()[0])
	if ackPort != app2.replicas[0].Port {
		t.Errorf("mid-connection packet routed to port %v, want old replica", ackPort)
	}
}

func TestFixVIIKeepsUnknownSYNsOnOldPolicy(t *testing.T) {
	app := newApp(FixVII, 1)
	app.EnvApply(newCtx(), "reconfigure")
	ctx := newCtx()
	dispatch(app, ctx, synTo(vip, openflow.TCPSyn), openflow.ReasonAction)
	port := microflowOutPort(t, ctx.Messages()[0])
	if port != app.replicas[0].Port {
		t.Errorf("FixVII SYN routed to port %v, want old replica", port)
	}
}

func TestInspectedConnectionsStayPinned(t *testing.T) {
	app := newApp(FixVI, 1)
	app.EnvApply(newCtx(), "reconfigure")
	// First packet (ACK) pins to the old replica; a following SYN of
	// the same 4-tuple must stay there.
	dispatch(app, newCtx(), synTo(vip, openflow.TCPAck), openflow.ReasonAction)
	ctx := newCtx()
	dispatch(app, ctx, synTo(vip, openflow.TCPSyn), openflow.ReasonAction)
	port := microflowOutPort(t, ctx.Messages()[0])
	if port != app.replicas[0].Port {
		t.Errorf("pinned connection jumped to port %v", port)
	}
}

func microflowOutPort(t *testing.T, m openflow.Msg) openflow.PortID {
	t.Helper()
	if m.Type != openflow.MsgFlowMod || m.Rule.Priority != prioMicroflow {
		t.Fatalf("not a microflow install: %v", m)
	}
	for _, a := range m.Rule.Actions {
		if a.Type == openflow.ActionOutput {
			return a.Port
		}
	}
	t.Fatal("microflow rule has no output")
	return 0
}

func TestCloneIsolation(t *testing.T) {
	app := newApp(Buggy, 1)
	k := app.StateKey()
	c := app.Clone().(*App)
	c.EnvApply(newCtx(), "reconfigure")
	dispatch(c, newCtx(), synTo(vip, openflow.TCPSyn), openflow.ReasonAction)
	if app.StateKey() != k {
		t.Error("clone mutation leaked into original")
	}
}

func TestSymbolicExecutionSeesAllClasses(t *testing.T) {
	app := newApp(Buggy, 1)
	tr := sym.NewTrace()
	ctx := controller.NewSymContext(tr)
	pkt := sym.SymbolicPacket(synTo(vip, openflow.TCPSyn), 1)
	app.Clone().PacketIn(ctx, 1, pkt, openflow.BufferNone, openflow.ReasonAction)
	if len(tr.Branches()) < 2 {
		t.Errorf("recorded %d branches, want >= 2 (ARP test + service test)", len(tr.Branches()))
	}
}
