// Package loadbalancer reproduces the web-server load-balancer
// application of §8.2 — a wildcard-rule load balancer in the style of
// "OpenFlow-Based Server Load Balancing Gone Wild" (Wang et al.,
// Hot-ICE 2011): client traffic to a virtual IP is divided over server
// replicas by wildcard rules on the client IP space; policy changes
// install controller-inspection rules so ongoing transfers finish at
// their old replica while new connections follow the new policy.
//
// The published code had four defects, reproduced here behind staged fix
// levels (each paper bug was found after fixing the previous one):
//
//	BUG-IV  the packet triggering packet_in is never released
//	        (NoForgottenPackets)
//	BUG-V   reconfiguration removes the old wildcard rules before
//	        installing the inspection rules; packets in the gap arrive
//	        as NO_MATCH and are ignored (NoForgottenPackets)
//	BUG-VI  proxied ARP requests are answered but never discarded from
//	        the switch buffer (NoForgottenPackets)
//	BUG-VII a duplicate SYN during a policy transition sends part of a
//	        connection to each replica (FlowAffinity)
package loadbalancer
