package nice

import (
	"net/http"

	"github.com/nice-go/nice/internal/telemetry"
)

// Deep telemetry for the search engines (internal/telemetry), re-exported
// so WithTelemetry and Campaign.Telemetry can be used without importing
// internal packages.
type (
	// Telemetry is a zero-dependency metrics registry: atomic counters,
	// gauges and fixed-bucket histograms plus a bounded structured
	// trace-event stream. Attach one with WithTelemetry (or
	// Campaign.Telemetry) and the engines publish their hot-path signals
	// under per-engine scopes; leave it nil and every instrumentation
	// site stays on its single-branch disabled fast path.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry — the JSON
	// document served at /metrics, written by `nice -metrics-out`, and
	// consumed by `nice-bench -metrics`.
	TelemetrySnapshot = telemetry.Snapshot
	// TraceEvent is one entry of the structured trace stream (search
	// start/stop, expansion batches, violations, cache evictions, budget
	// drawdowns).
	TraceEvent = telemetry.TraceEvent
	// TraceKind tags a TraceEvent.
	TraceKind = telemetry.TraceKind
)

// The structured trace-event kinds.
const (
	TraceSearchStart = telemetry.TraceSearchStart
	TraceSearchStop  = telemetry.TraceSearchStop
	TraceExpandBatch = telemetry.TraceExpandBatch
	TraceViolation   = telemetry.TraceViolation
	TraceCacheEvict  = telemetry.TraceCacheEvict
	TraceBudget      = telemetry.TraceBudget
)

// NewTelemetry builds an enabled metrics registry for WithTelemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// LoadTelemetrySnapshot reads and validates a snapshot written by
// (*Telemetry).WriteFile or `nice -metrics-out`.
func LoadTelemetrySnapshot(path string) (*TelemetrySnapshot, error) {
	return telemetry.LoadSnapshot(path)
}

// TelemetryMux serves live introspection over a registry: /metrics and
// /trace as JSON, plus /debug/vars (expvar) and /debug/pprof. The
// `-metrics-addr` flag of cmd/nice mounts it on a listener; embedders
// can mount it anywhere.
func TelemetryMux(reg *Telemetry) *http.ServeMux { return telemetry.NewMux(reg) }
