package nice

import (
	"context"
	"time"

	"github.com/nice-go/nice/internal/concolic"
	"github.com/nice-go/nice/internal/core"
	"github.com/nice-go/nice/internal/search"
)

// Streaming and engine plumbing (internal/core), re-exported so Run's
// options can be used without importing internal packages.
type (
	// Engine is a pluggable search strategy: the sequential DFS
	// checker, the parallel work-stealing engine, random walks and the
	// seeded swarm all implement it. Run drives whichever is selected.
	Engine = core.Engine
	// Observer receives streaming search results: violations as they
	// are found and periodic Progress snapshots. Parallel engines call
	// it from multiple goroutines; implementations must be safe for
	// concurrent use.
	Observer = core.Observer
	// ObserverFuncs adapts plain functions to Observer.
	ObserverFuncs = core.ObserverFuncs
	// Progress is one periodic snapshot of a running search.
	Progress = core.Progress
	// StopReason explains why a search ended early.
	StopReason = core.StopReason
	// Caches is the shared discover-cache set (symbolic-execution
	// results); share one across Runs to start warm.
	Caches = core.Caches
	// Reduction selects an interleaving-reduction layer for the search
	// (see WithReduction).
	Reduction = core.Reduction
	// EngineSpec describes one registered engine (name, summary and
	// constructor) — the single source of truth the CLI usage text and
	// the service's strategy validation read.
	EngineSpec = core.EngineSpec
	// ReductionSpec describes one reduction layer by name.
	ReductionSpec = core.ReductionSpec
)

// Reduction layers for WithReduction.
const (
	// NoReduction explores every enabled transition at every state —
	// the paper's semantics, and the default.
	NoReduction = core.ReductionNone
	// DPOR enables dynamic partial-order reduction over the transition
	// dependence relation: sleep sets plus Flanagan–Godefroid backtrack
	// sets in the sequential checker, sleep sets in the parallel hybrid
	// engine. Sound for the violated-property set; prunes states and
	// transitions the explored interleavings already cover.
	DPOR = core.ReductionDPOR
)

// Stop reasons recorded in Report.StopReason.
const (
	StopNone           = core.StopNone
	StopViolation      = core.StopViolation
	StopMaxTransitions = core.StopMaxTransitions
	StopMaxStates      = core.StopMaxStates
	StopDeadline       = core.StopDeadline
	StopCanceled       = core.StopCanceled
	StopSymBudget      = core.StopSymBudget
)

// Engine registry lookups (single source of truth for CLI and service).
var (
	// EngineSpecs lists every registered engine, sorted by name.
	EngineSpecs = core.EngineSpecs
	// LookupEngine resolves an engine by (case-insensitive) name.
	LookupEngine = core.LookupEngine
	// ReductionSpecs lists the reduction layers by name.
	ReductionSpecs = core.ReductionSpecs
	// ParseReduction resolves a reduction by name ("" = none).
	ParseReduction = core.ParseReduction
)

// NewCaches builds a fresh discover-cache set for WithCaches.
func NewCaches() *Caches { return core.NewCaches() }

// The five built-in engines.
var (
	// SequentialDFS is the paper's default full depth-first search
	// (Figure 5) — the reference oracle. Run's default engine.
	SequentialDFS = core.DFS
	// ParallelHybrid is the work-stealing parallel search
	// (internal/search): owners expand depth-first, thieves steal
	// breadth-first. WithWorkers sizes the pool; 1 delegates to the
	// sequential checker.
	ParallelHybrid = search.Parallel
	// RandomWalks is the legacy sequential random-walk mode (§1.3):
	// walks drawn from one seeded rand stream.
	RandomWalks = core.Walks
	// SeededSwarm is the parallel random-walk swarm: walk i always
	// uses seed+i, so the walk set is worker-count-invariant when
	// state identity is schedule-independent.
	SeededSwarm = search.SwarmEngine
	// ConcolicLoop is the model-checking × symbolic-execution feedback
	// loop (§3, Fig. 1): solver workers turn path conditions into packet
	// classes that seed new search frontiers, and novel controller
	// states enqueue fresh symbolic targets, until fixpoint or budget.
	// It explores the same state graph as the full searches (identical
	// violation sets) plus proactive discovery for hosts eager discovery
	// never reaches — a superset of their packet classes.
	ConcolicLoop = concolic.Loop
)

// runSettings collects Run's functional options.
type runSettings struct {
	engine     Engine
	eo         core.EngineOptions
	deadline   time.Duration
	workersSet bool
	walkMode   bool
	symMode    bool
}

// RunOption configures one Run call.
type RunOption func(*runSettings)

// WithEngine selects the search engine explicitly, overriding the
// defaults inferred from the other options.
func WithEngine(e Engine) RunOption {
	return func(s *runSettings) { s.engine = e }
}

// WithDeadline bounds the search's wall-clock time. The report of a
// search that hits the deadline is partial (Complete false, StopReason
// deadline) but every recorded trace still replays deterministically.
func WithDeadline(d time.Duration) RunOption {
	return func(s *runSettings) { s.deadline = d }
}

// WithMaxStates aborts the search once n unique states have been
// reached (the sequential engine stops exactly at n; parallel engines
// may overshoot by at most the worker count).
func WithMaxStates(n int64) RunOption {
	return func(s *runSettings) { s.eo.MaxStates = n }
}

// WithMaxTransitions aborts the search after n executed transitions.
// When Config.MaxTransitions is also set, the smaller budget wins.
func WithMaxTransitions(n int64) RunOption {
	return func(s *runSettings) { s.eo.MaxTransitions = n }
}

// WithWorkers sizes the worker pool (0 = all CPUs) and, unless an
// engine was chosen explicitly, selects the parallel engine — the
// hybrid full search, or the swarm when WithWalks is also present.
// Workers=1 delegates to the sequential reference checker, so
// WithWorkers(1) reproduces the default engine's reports exactly.
func WithWorkers(n int) RunOption {
	return func(s *runSettings) { s.eo.Workers = n; s.workersSet = true }
}

// WithWalks switches Run to random-walk mode: `walks` walks of at most
// `steps` transitions (0 picks the defaults 64 and 100), driven by
// seed. Combined with WithWorkers it selects the parallel SeededSwarm;
// alone it selects the sequential RandomWalks engine.
func WithWalks(seed int64, walks, steps int) RunOption {
	return func(s *runSettings) {
		s.eo.Seed = seed
		s.eo.Walks = walks
		s.eo.Steps = steps
		s.walkMode = true
	}
}

// WithSymBudget bounds the concolic loop's symbolic-execution budget:
// the search aborts with StopSymBudget (a partial, replayable report)
// once n discover explorations have run and a state still demands
// discovery; proactive feedback targets are dropped instead. n <= 0
// means unbounded. Unless an engine was chosen explicitly, it selects
// the ConcolicLoop engine; the eager engines ignore the budget.
func WithSymBudget(n int64) RunOption {
	return func(s *runSettings) { s.eo.SymBudget = n; s.symMode = true }
}

// WithSymWorkers sizes the concolic loop's solver pool (default 2) and,
// unless an engine was chosen explicitly, selects the ConcolicLoop
// engine. Composable with WithWorkers, which sizes the search pool.
func WithSymWorkers(n int) RunOption {
	return func(s *runSettings) { s.eo.SymWorkers = n; s.symMode = true }
}

// WithObserver streams violations-as-found and periodic progress
// snapshots to o while the search runs.
func WithObserver(o Observer) RunOption {
	return func(s *runSettings) { s.eo.Observer = o }
}

// WithProgressEvery sets the Observer's progress-snapshot interval
// (default 500ms).
func WithProgressEvery(d time.Duration) RunOption {
	return func(s *runSettings) { s.eo.ProgressEvery = d }
}

// WithCaches shares a discover-cache set across Runs, so later searches
// start with warm symbolic-execution results (and state identity stays
// schedule-independent across engines — the differential-parity
// setting).
func WithCaches(cc *Caches) RunOption {
	return func(s *runSettings) { s.eo.Caches = cc }
}

// WithReduction selects an interleaving-reduction layer, composable
// with every other option (budgets, observers, caches, telemetry).
// WithReduction(DPOR) prunes interleavings of provably independent
// transitions — packets on disjoint switches, commuting controller
// events — on top of the paper's heuristic strategies, which stay
// available unchanged (they live inside the Config). Reduction applies
// to the exhaustive engines (SequentialDFS, ParallelHybrid); the
// random-walk engines sample single interleavings, where there is
// nothing to reduce, and ignore it. Off by default.
func WithReduction(r Reduction) RunOption {
	return func(s *runSettings) { s.eo.Reduction = r }
}

// WithTelemetry attaches a metrics registry to the search: the engine
// publishes its counters, depth histogram and trace events under its
// scope ("dfs", "parallel", "walks", "swarm"), the COW layer under
// "cow", and the discover caches under "cache". A nil registry — or no
// WithTelemetry at all — keeps every instrumentation site on its
// single-branch disabled fast path.
func WithTelemetry(reg *Telemetry) RunOption {
	return func(s *runSettings) { s.eo.Telemetry = reg }
}

// Run is the unified checking entry point: one search over cfg, on a
// pluggable engine, under a context and budgets, optionally streaming
// to an Observer — the paper's single search loop (§1.3, §4) behind
// one composable API.
//
// Engine selection, unless WithEngine overrides it:
//
//   - default: SequentialDFS, the reference full search (Run(ctx, cfg)
//     ≡ the deprecated Check(cfg));
//   - WithWorkers(n): ParallelHybrid — the same full search spread
//     over n workers (n=1 delegates to the sequential checker);
//   - WithWalks(...): RandomWalks, or SeededSwarm when WithWorkers is
//     also given;
//   - WithSymBudget / WithSymWorkers: ConcolicLoop, the feedback loop
//     between the state-space search and the symbolic solver.
//
// Cancel ctx, set WithDeadline, or exhaust WithMaxStates /
// WithMaxTransitions and Run returns a partial Report — Complete
// false, StopReason saying why — whose violation traces still replay
// deterministically via Checker.ReplayWithProperties.
func Run(ctx context.Context, cfg *Config, opts ...RunOption) *Report {
	var s runSettings
	for _, opt := range opts {
		opt(&s)
	}
	engine := s.engine
	if engine == nil {
		switch {
		case s.symMode:
			engine = ConcolicLoop()
		case s.walkMode && s.workersSet:
			engine = SeededSwarm()
		case s.walkMode:
			engine = RandomWalks()
		case s.workersSet:
			engine = ParallelHybrid()
		default:
			engine = SequentialDFS()
		}
	}
	if s.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.deadline)
		defer cancel()
	}
	return engine.Search(ctx, cfg, s.eo)
}
