package controller_test

import (
	"testing"

	"github.com/nice-go/nice/apps/energyte"
	"github.com/nice-go/nice/apps/loadbalancer"
	"github.com/nice-go/nice/apps/pyswitch"
	"github.com/nice-go/nice/controller"
	"github.com/nice-go/nice/openflow"
	"github.com/nice-go/nice/topo"
)

// TestAppsImplementVersioned pins the AppKey dirty-hook wiring: all
// three case-study applications must satisfy controller.Versioned. An
// embedded field named identically to the promoted method would shadow
// it and silently fall back to conservative invalidation — this test is
// the guard.
func TestAppsImplementVersioned(t *testing.T) {
	lin, _, _ := topo.Linear(2)
	lb, _, _, _ := topo.LoadBalancer()
	tri, _, _, _ := topo.Triangle()
	apps := map[string]controller.App{
		"pyswitch":     pyswitch.New(pyswitch.Buggy, lin),
		"loadbalancer": loadbalancer.New(loadbalancer.Buggy, lb, openflow.MakeIPAddr(10, 0, 0, 100), 1),
		"energyte":     energyte.New(energyte.Buggy, tri, 1000, 1),
	}
	for name, app := range apps {
		if _, ok := app.(controller.Versioned); !ok {
			t.Errorf("%s does not implement controller.Versioned — dirty hook disabled", name)
		}
		// Clones must carry the counter (not reset it), or a cached key
		// could alias across different states.
		if v, ok := app.(controller.Versioned); ok {
			if cv := app.Clone().(controller.Versioned); cv.StateVersion() != v.StateVersion() {
				t.Errorf("%s: clone resets the state version", name)
			}
		}
	}
}
