// Package controller implements the NOX-like controller runtime of the
// modelled system (§2.2.1): applications are sets of event handlers that
// execute atomically, interact with switches through a standard actuator
// API, and keep arbitrary state. The same handler code runs concretely
// during model-checking transitions and concolically inside
// discover_packets / discover_stats.
package controller
