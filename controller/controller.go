package controller

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/nice-go/nice/internal/canon"
	"github.com/nice-go/nice/internal/cow"
	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/openflow"
)

// App is an OpenFlow controller application under test. Handlers execute
// atomically: the model checker invokes one handler per controller
// transition. Implementations embed BaseApp for the handlers they do not
// care about.
//
// Two extra obligations make the app checkable:
//
//   - Clone must deep-copy all mutable state (the checker's retained
//     deep-copy reference path forks states with it, and
//     discover_packets runs handlers on throwaway clones while the
//     receiver stays live);
//   - StateKey must render the app state canonically (internal/canon's
//     String helper does this for free), because state matching and the
//     relevant-packet cache are keyed by the stringified controller
//     state, exactly as in Figure 5 of the paper.
//
// Applications whose Clone cost matters should additionally implement
// ForkableApp: the copy-on-write search path then forks the app in O(1)
// and the deep copy happens only if a later handler actually mutates
// state.
type App interface {
	Name() string

	// SwitchJoin handles a switch joining the network.
	SwitchJoin(ctx *Context, sw openflow.SwitchID)
	// SwitchLeave handles a switch leaving the network.
	SwitchLeave(ctx *Context, sw openflow.SwitchID)
	// PacketIn handles a packet sent to the controller. pkt carries
	// concolic header fields; buf identifies the switch buffer holding
	// the packet (BufferNone during symbolic execution).
	PacketIn(ctx *Context, sw openflow.SwitchID, pkt *sym.Packet, buf openflow.BufferID, reason openflow.PacketInReason)
	// StatsReply handles a port-statistics reply; stats values are
	// concolic.
	StatsReply(ctx *Context, sw openflow.SwitchID, stats *sym.Stats)
	// BarrierReply handles a barrier acknowledgment.
	BarrierReply(ctx *Context, sw openflow.SwitchID, xid int)
	// PortStatus handles a port going up or down.
	PortStatus(ctx *Context, sw openflow.SwitchID, port openflow.PortID, up bool)

	Clone() App
	StateKey() string
}

// EmissionScope is an optional App refinement used by partial-order
// reduction: it bounds which switches a handler invocation may emit
// messages to (flow mods, packet-outs, stats/barrier requests), as a
// function of the switch whose message is being handled. EmitsTo must
// over-approximate every emission of every handler (PacketIn,
// StatsReply, BarrierReply, SwitchJoin/Leave, PortStatus) for messages
// from sw, in every reachable application state. Return ok=false to
// make no claim for that switch (the reduction then assumes the
// handler may emit anywhere). Applications that do not implement the
// interface are treated as unconstrained; a too-narrow claim makes the
// reduction unsound, so only implement it when the bound is a simple
// structural fact of the handler code.
type EmissionScope interface {
	EmitsTo(sw openflow.SwitchID) (targets []openflow.SwitchID, ok bool)
}

// StatePartition is an optional App refinement used by partial-order
// reduction: it claims the application's mutable state decomposes into
// per-switch partitions, such that every handler invocation for a
// switch-originated message (PacketIn, StatsReply, BarrierReply,
// SwitchJoin/Leave, PortStatus from switch sw) reads and writes
// partition sw alone. Handlers for host or environment events may
// still touch every partition — the reduction treats those as
// whole-state accesses. Under the claim, controller work for different
// switches commutes on application state, so dispatch transitions for
// different switches become independent. A false claim makes the
// reduction unsound; only implement it when per-switch isolation is a
// structural fact of the state layout (e.g. a table keyed by switch).
type StatePartition interface {
	PartitionedBySwitch() bool
}

// ForkableApp is the copy-on-write forking contract for applications
// (the App-interface half of the internal/cow protocol). Fork returns a
// fork that MAY share internal mutable state with the receiver under
// two ownership rules:
//
//  1. The caller guarantees the receiver is frozen: after Fork it will
//     never be mutated again through any reference. The COW runtime
//     guarantees this by epoch retirement — a forked System can only
//     reach the old app through frozen runtimes.
//  2. The fork must copy any borrowed mutable state before its own
//     first mutation (the ensureOwned step), so handler writes never
//     reach state the frozen receiver still exposes to concurrent
//     readers.
//
// Clone keeps its full deep-copy semantics and remains required: it is
// used where the receiver stays live and mutable — discover_packets'
// throwaway handler runs and the retained deep-clone reference path.
type ForkableApp interface {
	App
	// Fork returns a copy-on-write fork of the application; the
	// receiver must be treated as frozen afterwards.
	Fork() App
}

// forkApp forks via ForkableApp when implemented, falling back to a
// deep Clone.
func forkApp(a App) App {
	if f, ok := a.(ForkableApp); ok {
		return f.Fork()
	}
	return a.Clone()
}

// Versioned is the AppKey dirty hook: applications that bump a version
// counter at every state mutation implement it (embed VersionCounter),
// and the runtime then caches the rendered StateKey until the version
// moves. Applications without it get conservative invalidation — the
// cache is dropped on every dispatched handler, mutating or not.
type Versioned interface {
	// StateVersion returns a counter that changes (strictly increases)
	// whenever the application's hashable state mutates.
	StateVersion() uint64
}

// VersionCounter is the embeddable implementation of Versioned. (The
// field must not be named like the method, or embedding would shadow
// the promoted StateVersion method — TestAppsImplementVersioned guards
// this.) Handlers call BumpStateVersion at every mutation site;
// value-copying clones (c := *a) carry the counter over, which is
// correct because the clone starts in an identical state.
type VersionCounter struct{ version uint64 }

// BumpStateVersion marks one state mutation.
func (s *VersionCounter) BumpStateVersion() { s.version++ }

// StateVersion implements Versioned.
func (s *VersionCounter) StateVersion() uint64 { return s.version }

// EnvApp is implemented by applications with environment transitions —
// out-of-band reconfiguration commands such as the load balancer's
// policy change (§8.2). The checker exposes one transition per enabled
// event name.
type EnvApp interface {
	App
	// EnvEvents lists the currently enabled environment events.
	EnvEvents() []string
	// EnvApply executes one.
	EnvApply(ctx *Context, event string)
}

// BaseApp provides no-op handler implementations.
type BaseApp struct{}

// SwitchJoin implements App.
func (BaseApp) SwitchJoin(*Context, openflow.SwitchID) {}

// SwitchLeave implements App.
func (BaseApp) SwitchLeave(*Context, openflow.SwitchID) {}

// PacketIn implements App.
func (BaseApp) PacketIn(*Context, openflow.SwitchID, *sym.Packet, openflow.BufferID, openflow.PacketInReason) {
}

// StatsReply implements App.
func (BaseApp) StatsReply(*Context, openflow.SwitchID, *sym.Stats) {}

// BarrierReply implements App.
func (BaseApp) BarrierReply(*Context, openflow.SwitchID, int) {}

// PortStatus implements App.
func (BaseApp) PortStatus(*Context, openflow.SwitchID, openflow.PortID, bool) {}

// Context is the per-invocation handler context: the branch-recording
// trace plus the actuator. Handlers route packet-dependent conditions
// through If and emit switch commands through the actuator methods; the
// runtime collects the emitted messages and the model checker delivers
// them (asynchronously, unless NO-DELAY collapses the exchange).
type Context struct {
	tr   *sym.Trace
	msgs []openflow.Msg
	// symbolic marks discover_packets / discover_stats executions:
	// actuator effects are recorded but will be discarded by the
	// caller together with the cloned app.
	symbolic bool
	// rt is set on runtime-issued contexts: barrier xids come straight
	// from the runtime counter, avoiding a closure allocation per
	// dispatched handler. nextXid is the stand-alone fallback.
	rt      *Runtime
	nextXid func() int
}

// NewContext builds a concrete-execution context. nextXid allocates
// barrier correlation IDs (the runtime supplies it; tests may pass nil
// to get a local counter).
func NewContext(nextXid func() int) *Context {
	return newContext(nil, false, nextXid)
}

// NewSymContext builds a concolic-execution context recording into tr.
func NewSymContext(tr *sym.Trace) *Context {
	return newContext(tr, true, nil)
}

func newContext(tr *sym.Trace, symbolic bool, nextXid func() int) *Context {
	ctx := &Context{tr: tr, symbolic: symbolic, nextXid: nextXid}
	if ctx.nextXid == nil {
		n := 0
		ctx.nextXid = func() int { n++; return n }
	}
	return ctx
}

// allocXid hands out the next barrier correlation ID.
func (c *Context) allocXid() int {
	if c.rt != nil {
		c.rt.xid++
		return c.rt.xid
	}
	return c.nextXid()
}

// If evaluates a concolic condition, recording the branch when executing
// symbolically. This is the one instrumentation point applications use
// in place of bare if statements over packet or stats data.
func (c *Context) If(b sym.Bool) bool { return c.tr.If(b) }

// Trace exposes the recording trace (for the sym.Lookup* map stubs).
func (c *Context) Trace() *sym.Trace { return c.tr }

// Symbolic reports whether this execution is a discover transition.
func (c *Context) Symbolic() bool { return c.symbolic }

// InstallRule sends a flow_mod add to a switch — the install_rule call of
// the paper's Figure 3.
func (c *Context) InstallRule(sw openflow.SwitchID, r openflow.Rule) {
	c.emit(openflow.Msg{Type: openflow.MsgFlowMod, Switch: sw, Cmd: openflow.FlowAdd, Rule: r})
}

// DeleteRule sends a loose flow_mod delete matching pattern.
func (c *Context) DeleteRule(sw openflow.SwitchID, pattern openflow.Match) {
	c.emit(openflow.Msg{Type: openflow.MsgFlowMod, Switch: sw, Cmd: openflow.FlowDelete,
		Rule: openflow.Rule{Match: pattern}})
}

// DeleteRuleStrict sends a strict flow_mod delete.
func (c *Context) DeleteRuleStrict(sw openflow.SwitchID, pattern openflow.Match, priority int) {
	c.emit(openflow.Msg{Type: openflow.MsgFlowMod, Switch: sw, Cmd: openflow.FlowDeleteStrict,
		Rule: openflow.Rule{Match: pattern, Priority: priority}})
}

// PacketOut releases a buffered packet with the given actions — the
// send_packet_out call of Figure 3.
func (c *Context) PacketOut(sw openflow.SwitchID, buf openflow.BufferID, actions ...openflow.Action) {
	c.emit(openflow.Msg{Type: openflow.MsgPacketOut, Switch: sw, Buffer: buf, Actions: actions})
}

// PacketOutData injects a controller-crafted packet (e.g. a proxied ARP
// reply) on a switch.
func (c *Context) PacketOutData(sw openflow.SwitchID, h openflow.Header, inPort openflow.PortID, actions ...openflow.Action) {
	c.emit(openflow.Msg{Type: openflow.MsgPacketOut, Switch: sw, Buffer: openflow.BufferNone,
		Packet: openflow.Packet{Header: h}, InPort: inPort, Actions: actions})
}

// FloodPacket releases a buffered packet with the flood action — the
// flood_packet call of Figure 3.
func (c *Context) FloodPacket(sw openflow.SwitchID, buf openflow.BufferID) {
	c.PacketOut(sw, buf, openflow.Flood())
}

// RequestStats queries a switch for port statistics (PortNone = all).
func (c *Context) RequestStats(sw openflow.SwitchID, port openflow.PortID) {
	c.emit(openflow.Msg{Type: openflow.MsgStatsRequest, Switch: sw, StatsPort: port})
}

// Barrier sends a barrier_request and returns its correlation ID.
func (c *Context) Barrier(sw openflow.SwitchID) int {
	xid := c.allocXid()
	c.emit(openflow.Msg{Type: openflow.MsgBarrierRequest, Switch: sw, Xid: xid})
	return xid
}

func (c *Context) emit(m openflow.Msg) { c.msgs = append(c.msgs, m) }

// Messages returns the messages the handler emitted, in order.
func (c *Context) Messages() []openflow.Msg { return c.msgs }

// Runtime is the controller component of the modelled system: the
// application plus the per-switch message channels. The channel to each
// switch is reliable and in-order (§2.2.2: "The channel with the
// controller offers reliable, in-order delivery of OpenFlow messages").
type Runtime struct {
	App App

	// inQ holds switch→controller messages per switch.
	inQ map[openflow.SwitchID][]openflow.Msg
	// outQ holds controller→switch messages per switch.
	outQ map[openflow.SwitchID][]openflow.Msg

	// seq stamps controller→switch messages with a global issue order
	// (consumed by the UNUSUAL strategy). xid numbers barriers. Both
	// are scheduler metadata, deliberately excluded from state hashes.
	seq int
	xid int

	// Incremental-fingerprinting caches: the rendered application key
	// (with its hashes and, for Versioned apps, the version it was
	// rendered at) and the two channel renderings. Each is valid until
	// the corresponding state mutates; Clone copies all three.
	appKey       string
	appKeyHash   uint64
	appKeyDigest canon.Digest
	appKeyValid  bool
	appVersion   uint64
	inKey        string
	inKeyHash    uint64
	inKeyValid   bool
	outKey       string
	outKeyHash   uint64
	outKeyValid  bool

	// Tag is the copy-on-write ownership marker (internal/cow): the
	// System owning this runtime compares it against its current epoch
	// and forks before mutating when they differ.
	cow.Tag

	// borrowApp / borrowIn / borrowOut mark the application and the two
	// channel maps as shared with the runtime this one was forked from;
	// each is copied (the app via ForkableApp.Fork when implemented)
	// before its first mutation. The flags live only on the exclusive
	// fork — the frozen source is never written.
	borrowApp, borrowIn, borrowOut bool
}

// NewRuntime wraps an application.
func NewRuntime(app App) *Runtime {
	return &Runtime{
		App:  app,
		inQ:  make(map[openflow.SwitchID][]openflow.Msg),
		outQ: make(map[openflow.SwitchID][]openflow.Msg),
	}
}

// Fork returns a copy-on-write fork owned at epoch owner: an O(1)
// struct copy borrowing the application and both channel maps. The
// receiver must be frozen afterwards (the System-level protocol
// guarantees this by retiring its epoch); the fork copies each borrowed
// piece before its own first mutation of it. Queued messages are never
// copied at all — a message is immutable once enqueued.
func (r *Runtime) Fork(owner uint64) *Runtime {
	c := *r
	c.SetOwner(owner)
	c.borrowApp, c.borrowIn, c.borrowOut = true, true, true
	return &c
}

// ownApp forks the borrowed application before the first handler
// dispatch mutates it.
func (r *Runtime) ownApp() {
	if !r.borrowApp {
		return
	}
	r.App = forkApp(r.App)
	r.borrowApp = false
}

// ownInQ copies the borrowed switch→controller channel map before its
// first mutation; queue slices are capacity-clamped so appends
// reallocate instead of writing a shared backing array.
func (r *Runtime) ownInQ() {
	if !r.borrowIn {
		return
	}
	r.inQ = copyQueues(r.inQ)
	r.borrowIn = false
}

// ownOutQ is ownInQ for the controller→switch channel map.
func (r *Runtime) ownOutQ() {
	if !r.borrowOut {
		return
	}
	r.outQ = copyQueues(r.outQ)
	r.borrowOut = false
}

func copyQueues(m map[openflow.SwitchID][]openflow.Msg) map[openflow.SwitchID][]openflow.Msg {
	c := make(map[openflow.SwitchID][]openflow.Msg, len(m))
	for sw, q := range m {
		c[sw] = q[:len(q):len(q)]
	}
	return c
}

// Clone deep-copies the runtime (including the app) — the retained
// deep-copy forking path; Fork is the copy-on-write fast path.
func (r *Runtime) Clone() *Runtime {
	c := &Runtime{
		App:  r.App.Clone(),
		inQ:  make(map[openflow.SwitchID][]openflow.Msg, len(r.inQ)),
		outQ: make(map[openflow.SwitchID][]openflow.Msg, len(r.outQ)),
		seq:  r.seq,
		xid:  r.xid,

		appKey:       r.appKey,
		appKeyHash:   r.appKeyHash,
		appKeyDigest: r.appKeyDigest,
		appKeyValid:  r.appKeyValid,
		appVersion:   r.appVersion,
		inKey:        r.inKey,
		inKeyHash:    r.inKeyHash,
		inKeyValid:   r.inKeyValid,
		outKey:       r.outKey,
		outKeyHash:   r.outKeyHash,
		outKeyValid:  r.outKeyValid,
	}
	for sw, q := range r.inQ {
		c.inQ[sw] = cloneMsgs(q)
	}
	for sw, q := range r.outQ {
		c.outQ[sw] = cloneMsgs(q)
	}
	return c
}

func cloneMsgs(q []openflow.Msg) []openflow.Msg {
	out := make([]openflow.Msg, len(q))
	for i, m := range q {
		out[i] = m.Clone()
	}
	return out
}

// DeliverToController enqueues a switch→controller message.
func (r *Runtime) DeliverToController(m openflow.Msg) {
	r.ownInQ()
	r.inKeyValid = false
	r.inQ[m.Switch] = append(r.inQ[m.Switch], m.MemoKey())
}

// InLen reports the inbound (switch→controller) queue length for a
// switch. The reduction layer uses it to tell head from tail accesses.
func (r *Runtime) InLen(sw openflow.SwitchID) int { return len(r.inQ[sw]) }

// OutLen reports the outbound (controller→switch) queue length for a
// switch.
func (r *Runtime) OutLen(sw openflow.SwitchID) int { return len(r.outQ[sw]) }

// PendingIn returns the switches with queued inbound messages, sorted.
func (r *Runtime) PendingIn() []openflow.SwitchID { return sortedKeys(r.inQ) }

// PendingOut returns the switches with queued outbound messages, sorted.
func (r *Runtime) PendingOut() []openflow.SwitchID { return sortedKeys(r.outQ) }

func sortedKeys(m map[openflow.SwitchID][]openflow.Msg) []openflow.SwitchID {
	var out []openflow.SwitchID
	for sw, q := range m {
		if len(q) > 0 {
			out = append(out, sw)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeadIn returns the next inbound message from a switch without
// consuming it.
func (r *Runtime) HeadIn(sw openflow.SwitchID) (openflow.Msg, bool) {
	q := r.inQ[sw]
	if len(q) == 0 {
		return openflow.Msg{}, false
	}
	return q[0], true
}

// PopIn consumes the next inbound message from a switch.
func (r *Runtime) PopIn(sw openflow.SwitchID) (openflow.Msg, bool) {
	q := r.inQ[sw]
	if len(q) == 0 {
		return openflow.Msg{}, false
	}
	r.ownInQ()
	r.inKeyValid = false
	m := q[0]
	// Sharing the tail is safe: queue backings are never written in
	// place (appends on forks reallocate past the clamped capacity).
	r.inQ[sw] = q[1:]
	return m, true
}

// HeadOut returns the next outbound message for a switch without
// consuming it.
func (r *Runtime) HeadOut(sw openflow.SwitchID) (openflow.Msg, bool) {
	q := r.outQ[sw]
	if len(q) == 0 {
		return openflow.Msg{}, false
	}
	return q[0], true
}

// PopOut consumes the next outbound message for a switch.
func (r *Runtime) PopOut(sw openflow.SwitchID) (openflow.Msg, bool) {
	q := r.outQ[sw]
	if len(q) == 0 {
		return openflow.Msg{}, false
	}
	r.ownOutQ()
	r.outKeyValid = false
	m := q[0]
	r.outQ[sw] = q[1:]
	return m, true
}

// Emit stamps and enqueues handler-emitted messages onto the outbound
// channels.
func (r *Runtime) Emit(msgs []openflow.Msg) {
	if len(msgs) > 0 {
		r.ownOutQ()
		r.outKeyValid = false
	}
	for _, m := range msgs {
		r.seq++
		m.Seq = r.seq
		r.outQ[m.Switch] = append(r.outQ[m.Switch], m.MemoKey())
	}
}

// NewContext builds a concrete handler context wired to the runtime's
// xid allocator.
func (r *Runtime) NewContext() *Context {
	return &Context{rt: r}
}

// appDirty marks a handler run: for apps without the Versioned dirty
// hook the cached key is dropped unconditionally; Versioned apps keep
// their cache until their version counter moves.
func (r *Runtime) appDirty() {
	if _, ok := r.App.(Versioned); !ok {
		r.appKeyValid = false
	}
}

// Dispatch executes the handler for one inbound message on the app,
// returning the emitted messages (already enqueued via Emit).
func (r *Runtime) Dispatch(m openflow.Msg) []openflow.Msg {
	r.ownApp()
	r.appDirty()
	ctx := r.NewContext()
	switch m.Type {
	case openflow.MsgPacketIn:
		pkt := sym.ConcretePacket(m.Packet.Header, m.InPort)
		r.App.PacketIn(ctx, m.Switch, pkt, m.Buffer, m.Reason)
	case openflow.MsgSwitchJoin:
		r.App.SwitchJoin(ctx, m.Switch)
	case openflow.MsgSwitchLeave:
		r.App.SwitchLeave(ctx, m.Switch)
	case openflow.MsgStatsReply:
		r.App.StatsReply(ctx, m.Switch, sym.ConcreteStats(m.Stats))
	case openflow.MsgBarrierReply:
		r.App.BarrierReply(ctx, m.Switch, m.Xid)
	case openflow.MsgPortStatus:
		r.App.PortStatus(ctx, m.Switch, m.InPort, m.PortUp)
	default:
		panic(fmt.Sprintf("controller: cannot dispatch %v", m.Type))
	}
	r.Emit(ctx.Messages())
	return ctx.Messages()
}

// DispatchStats executes the stats handler with checker-chosen concrete
// stats values (the process_stats transition armed by discover_stats).
func (r *Runtime) DispatchStats(sw openflow.SwitchID, stats []openflow.PortStats) []openflow.Msg {
	r.ownApp()
	r.appDirty()
	ctx := r.NewContext()
	r.App.StatsReply(ctx, sw, sym.ConcreteStats(stats))
	r.Emit(ctx.Messages())
	return ctx.Messages()
}

// DispatchEnv executes an environment event on an EnvApp.
func (r *Runtime) DispatchEnv(event string) []openflow.Msg {
	r.ownApp()
	env, ok := r.App.(EnvApp)
	if !ok {
		panic(fmt.Sprintf("controller: app %s has no environment events", r.App.Name()))
	}
	r.appDirty()
	ctx := r.NewContext()
	env.EnvApply(ctx, event)
	r.Emit(ctx.Messages())
	return ctx.Messages()
}

// StateKey renders the controller component canonically: the app's own
// canonical state plus both channel contents. seq/xid counters are
// excluded (scheduler metadata; see DESIGN.md). All three parts come
// from the incremental caches; RenderStateKey bypasses them.
func (r *Runtime) StateKey() string {
	var b strings.Builder
	b.WriteString("app{")
	b.WriteString(r.AppKey())
	b.WriteString("} in{")
	b.WriteString(r.InKey())
	b.WriteString("} out{")
	b.WriteString(r.OutKey())
	b.WriteString("}")
	return b.String()
}

// RenderStateKey rebuilds the controller key from scratch, ignoring all
// caches (the differential-oracle path).
func (r *Runtime) RenderStateKey() string {
	var b strings.Builder
	b.WriteString("app{")
	b.WriteString(r.App.StateKey())
	b.WriteString("} in{")
	writeQueues(&b, r.inQ)
	b.WriteString("} out{")
	writeQueues(&b, r.outQ)
	b.WriteString("}")
	return b.String()
}

// AppKey renders only the application state — the key of the
// relevant-packet cache (client.packets in Figure 5 is keyed by
// "stringified controller state"). The rendering is cached: Versioned
// apps re-render only when their version counter moves, other apps
// whenever any handler has run since the last call.
func (r *Runtime) AppKey() string {
	if v, ok := r.App.(Versioned); ok {
		if ver := v.StateVersion(); !r.appKeyValid || r.appVersion != ver {
			r.fillAppKey()
			r.appVersion = ver
		}
	} else if !r.appKeyValid {
		r.fillAppKey()
	}
	return r.appKey
}

func (r *Runtime) fillAppKey() {
	r.appKey = r.App.StateKey()
	r.appKeyDigest = canon.Hash128(r.appKey)
	r.appKeyHash = canon.Hash64String(r.appKey)
	r.appKeyValid = true
}

// AppKeyHash64 returns the cached 64-bit hash of AppKey.
func (r *Runtime) AppKeyHash64() uint64 {
	r.AppKey()
	return r.appKeyHash
}

// AppKeyDigest returns the cached 128-bit digest of AppKey — the
// discover-cache key component (core keys its relevant-packet memo by
// it instead of the full string, keeping lookups allocation-free).
func (r *Runtime) AppKeyDigest() canon.Digest {
	r.AppKey()
	return r.appKeyDigest
}

// InKey renders the switch→controller channel contents (cached).
func (r *Runtime) InKey() string {
	if !r.inKeyValid {
		var b strings.Builder
		writeQueues(&b, r.inQ)
		r.inKey = b.String()
		r.inKeyHash = canon.Hash64String(r.inKey)
		r.inKeyValid = true
	}
	return r.inKey
}

// InKeyHash64 returns the cached 64-bit hash of InKey — the channel
// component System.Fingerprint combines without re-hashing the string.
func (r *Runtime) InKeyHash64() uint64 {
	r.InKey()
	return r.inKeyHash
}

// OutKey renders the controller→switch channel contents (cached).
func (r *Runtime) OutKey() string {
	if !r.outKeyValid {
		var b strings.Builder
		writeQueues(&b, r.outQ)
		r.outKey = b.String()
		r.outKeyHash = canon.Hash64String(r.outKey)
		r.outKeyValid = true
	}
	return r.outKey
}

// OutKeyHash64 is InKeyHash64 for the controller→switch channels.
func (r *Runtime) OutKeyHash64() uint64 {
	r.OutKey()
	return r.outKeyHash
}

func writeQueues(b *strings.Builder, m map[openflow.SwitchID][]openflow.Msg) {
	// Sort into a stack-allocated key buffer: channel renderings run on
	// every queue mutation, so the sortedKeys allocation would be a
	// top-ten site of a whole search.
	var kbuf [16]openflow.SwitchID
	keys := kbuf[:0]
	for sw, q := range m {
		if len(q) > 0 {
			keys = append(keys, sw)
		}
	}
	// Insertion sort: sort.Slice's closure would force the key buffer
	// to escape to the heap on every channel render.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	// Messages carry memoized keys (Msg.MemoKey), so sizing the builder
	// is a cheap len sum and the rendering itself is pure copying.
	size := 0
	for _, sw := range keys {
		size += 12
		for i := range m[sw] {
			size += len(m[sw][i].Key()) + 1
		}
	}
	b.Grow(size)
	for _, sw := range keys {
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(int(sw)))
		b.WriteString(":[")
		for i, msg := range m[sw] {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(msg.Key())
		}
		b.WriteString("]")
	}
}
