package controller

import (
	"strings"
	"testing"

	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/openflow"
)

// recorderApp records which handlers ran and emits one rule per
// packet_in.
type recorderApp struct {
	BaseApp
	Calls []string
}

func (a *recorderApp) Name() string { return "recorder" }

func (a *recorderApp) Clone() App {
	return &recorderApp{Calls: append([]string(nil), a.Calls...)}
}

func (a *recorderApp) StateKey() string { return strings.Join(a.Calls, ",") }

func (a *recorderApp) SwitchJoin(_ *Context, sw openflow.SwitchID) {
	a.Calls = append(a.Calls, "join")
}

func (a *recorderApp) PacketIn(ctx *Context, sw openflow.SwitchID, pkt *sym.Packet,
	buf openflow.BufferID, reason openflow.PacketInReason) {
	a.Calls = append(a.Calls, "packet_in")
	ctx.InstallRule(sw, openflow.Rule{Priority: 1, Match: openflow.MatchAll(),
		Actions: []openflow.Action{openflow.Output(1)}})
	ctx.PacketOut(sw, buf, openflow.Output(1))
}

func (a *recorderApp) StatsReply(_ *Context, _ openflow.SwitchID, _ *sym.Stats) {
	a.Calls = append(a.Calls, "stats")
}

func (a *recorderApp) BarrierReply(_ *Context, _ openflow.SwitchID, xid int) {
	a.Calls = append(a.Calls, "barrier")
}

func (a *recorderApp) PortStatus(_ *Context, _ openflow.SwitchID, _ openflow.PortID, up bool) {
	a.Calls = append(a.Calls, "port_status")
}

func packetInMsg() openflow.Msg {
	return openflow.Msg{
		Type: openflow.MsgPacketIn, Switch: 1, Buffer: 7, InPort: 2,
		Packet: openflow.Packet{Header: openflow.Header{EthType: openflow.EthTypeIPv4}},
	}
}

func TestDispatchRoutesToHandlers(t *testing.T) {
	app := &recorderApp{}
	rt := NewRuntime(app)
	rt.Dispatch(openflow.Msg{Type: openflow.MsgSwitchJoin, Switch: 1})
	rt.Dispatch(packetInMsg())
	rt.Dispatch(openflow.Msg{Type: openflow.MsgStatsReply, Switch: 1})
	rt.Dispatch(openflow.Msg{Type: openflow.MsgBarrierReply, Switch: 1, Xid: 3})
	rt.Dispatch(openflow.Msg{Type: openflow.MsgPortStatus, Switch: 1, InPort: 2, PortUp: true})
	want := "join,packet_in,stats,barrier,port_status"
	if app.StateKey() != want {
		t.Errorf("calls = %q, want %q", app.StateKey(), want)
	}
}

func TestEmittedMessagesAreStampedAndQueued(t *testing.T) {
	rt := NewRuntime(&recorderApp{})
	rt.Dispatch(packetInMsg())
	out := rt.PendingOut()
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("pending out: %v", out)
	}
	m1, _ := rt.PopOut(1)
	m2, ok := rt.PopOut(1)
	if !ok {
		t.Fatal("second message missing")
	}
	if m1.Type != openflow.MsgFlowMod || m2.Type != openflow.MsgPacketOut {
		t.Errorf("emission order wrong: %v then %v", m1.Type, m2.Type)
	}
	if m2.Seq <= m1.Seq {
		t.Errorf("issue numbers not increasing: %d then %d", m1.Seq, m2.Seq)
	}
	if _, ok := rt.PopOut(1); ok {
		t.Error("queue not drained")
	}
}

func TestChannelFIFOOrder(t *testing.T) {
	rt := NewRuntime(&recorderApp{})
	for i := 0; i < 3; i++ {
		m := packetInMsg()
		m.Xid = i
		rt.DeliverToController(m)
	}
	for i := 0; i < 3; i++ {
		m, ok := rt.PopIn(1)
		if !ok || m.Xid != i {
			t.Fatalf("FIFO violated at %d: %v", i, m)
		}
	}
}

func TestHeadDoesNotConsume(t *testing.T) {
	rt := NewRuntime(&recorderApp{})
	rt.DeliverToController(packetInMsg())
	if _, ok := rt.HeadIn(1); !ok {
		t.Fatal("head missing")
	}
	if _, ok := rt.HeadIn(1); !ok {
		t.Fatal("head consumed by peek")
	}
}

func TestRuntimeCloneIndependence(t *testing.T) {
	rt := NewRuntime(&recorderApp{})
	rt.DeliverToController(packetInMsg())
	c := rt.Clone()
	c.Dispatch(packetInMsg())
	if len(rt.App.(*recorderApp).Calls) != 0 {
		t.Error("clone dispatch mutated original app")
	}
	c.PopIn(1)
	if _, ok := rt.HeadIn(1); !ok {
		t.Error("clone pop drained original channel")
	}
}

func TestStateKeyIncludesChannelsExcludesCounters(t *testing.T) {
	rt := NewRuntime(&recorderApp{})
	base := rt.StateKey()
	rt.DeliverToController(packetInMsg())
	if rt.StateKey() == base {
		t.Error("inbound channel not part of the state key")
	}
	rt.PopIn(1)
	if rt.StateKey() != base {
		t.Error("drained runtime state key differs from baseline")
	}
	// Advancing seq/xid alone must not change the key (scheduler
	// metadata, excluded by design).
	rt.Emit(nil)
	rt2 := NewRuntime(&recorderApp{})
	rt2.Emit([]openflow.Msg{{Type: openflow.MsgFlowMod, Switch: 1}})
	rt2.PopOut(1)
	if rt2.StateKey() != base {
		t.Error("emitting and draining left residue in the key")
	}
}

func TestBarrierXidsUnique(t *testing.T) {
	rt := NewRuntime(&recorderApp{})
	ctx := rt.NewContext()
	x1 := ctx.Barrier(1)
	x2 := ctx.Barrier(1)
	if x1 == x2 {
		t.Error("barrier xids repeat")
	}
	msgs := ctx.Messages()
	if len(msgs) != 2 || msgs[0].Type != openflow.MsgBarrierRequest {
		t.Errorf("messages: %v", msgs)
	}
}

func TestSymContextRecordsBranches(t *testing.T) {
	tr := sym.NewTrace()
	ctx := NewSymContext(tr)
	if !ctx.Symbolic() {
		t.Error("sym context not marked symbolic")
	}
	v := sym.Symbolic("x", 8, 5)
	if !ctx.If(v.EqConst(5)) {
		t.Error("If truth wrong")
	}
	if len(tr.Branches()) != 1 {
		t.Error("branch not recorded")
	}
}

func TestActuatorMessageShapes(t *testing.T) {
	ctx := NewContext(nil)
	ctx.InstallRule(2, openflow.Rule{Priority: 3, Match: openflow.MatchAll()})
	ctx.DeleteRule(2, openflow.MatchAll())
	ctx.DeleteRuleStrict(2, openflow.MatchAll(), 3)
	ctx.PacketOut(2, 9, openflow.Output(1))
	ctx.PacketOutData(2, openflow.Header{EthType: openflow.EthTypeARP}, openflow.PortNone, openflow.Output(1))
	ctx.FloodPacket(2, 9)
	ctx.RequestStats(2, openflow.PortNone)
	msgs := ctx.Messages()
	wantTypes := []openflow.MsgType{
		openflow.MsgFlowMod, openflow.MsgFlowMod, openflow.MsgFlowMod,
		openflow.MsgPacketOut, openflow.MsgPacketOut, openflow.MsgPacketOut,
		openflow.MsgStatsRequest,
	}
	if len(msgs) != len(wantTypes) {
		t.Fatalf("%d messages, want %d", len(msgs), len(wantTypes))
	}
	for i, w := range wantTypes {
		if msgs[i].Type != w {
			t.Errorf("message %d type %v, want %v", i, msgs[i].Type, w)
		}
		if msgs[i].Switch != 2 {
			t.Errorf("message %d switch %v", i, msgs[i].Switch)
		}
	}
	if msgs[1].Cmd != openflow.FlowDelete || msgs[2].Cmd != openflow.FlowDeleteStrict {
		t.Error("delete commands wrong")
	}
	if msgs[5].Actions[0].Type != openflow.ActionFlood {
		t.Error("flood packet_out wrong")
	}
}

func TestDispatchStats(t *testing.T) {
	app := &recorderApp{}
	rt := NewRuntime(app)
	rt.DispatchStats(1, []openflow.PortStats{{Port: 1, TxBytes: 5}})
	if app.StateKey() != "stats" {
		t.Error("stats handler not dispatched")
	}
}
