module github.com/nice-go/nice

go 1.23
