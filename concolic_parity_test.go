// Differential parity for the concolic feedback loop: on every
// registered scenario the loop must report exactly the violated-property
// set of the eager reference search (it explores the same state graph —
// discover transitions are merely deferred to the solver pool), while
// discovering a superset of the eager engines' packet and stats classes
// (proactive feedback targets cover hosts eager discovery never
// reaches). Both searches start cold on private cache sets so the class
// inventories are attributable to one engine each.
package nice_test

import (
	"context"
	"testing"

	"github.com/nice-go/nice"
	"github.com/nice-go/nice/internal/core"
	"github.com/nice-go/nice/scenarios"
)

func TestConcolicScenarioParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is slow")
	}
	all := scenarios.All()
	if len(all) < 19 {
		t.Fatalf("registry holds %d scenarios, expected at least 19", len(all))
	}
	ctx := context.Background()
	for _, sc := range all {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			build := func() *nice.Config {
				cfg := sc.Config(parityScales[sc.Name])
				cfg.StopAtFirstViolation = false
				return cfg
			}

			ccEager := nice.NewCaches()
			eager := nice.SequentialDFS().Search(ctx, build(),
				core.EngineOptions{Caches: ccEager})

			ccLoop := nice.NewCaches()
			loop := nice.ConcolicLoop().Search(ctx, build(),
				core.EngineOptions{Caches: ccLoop, Workers: 4, SymWorkers: 2})

			if !loop.Complete || loop.StopReason != nice.StopNone {
				t.Fatalf("concolic report partial: stop=%q", loop.StopReason)
			}
			// Identical violation sets — including on the scenarios whose
			// expected property only appears at other scales or strategies
			// (the reference search misses it there too, and the loop must
			// agree exactly, not just find "at least as much").
			if !sameSet(violatedSet(eager), violatedSet(loop)) {
				t.Errorf("concolic violations %v != eager %v",
					violatedSet(loop), violatedSet(eager))
			}
			if sc.ExpectedProperty != "" && violatedSet(eager)[sc.ExpectedProperty] &&
				!violatedSet(loop)[sc.ExpectedProperty] {
				t.Errorf("concolic missed expected violation %q", sc.ExpectedProperty)
			}

			loopClasses := ccLoop.DiscoveredClasses()
			for class := range ccEager.DiscoveredClasses() {
				if !loopClasses[class] {
					t.Errorf("eager class missing from concolic inventory: %s", class)
				}
			}
			if e, l := ccEager.Classes(), ccLoop.Classes(); l < e {
				t.Errorf("concolic discovered fewer classes than eager: %d < %d", l, e)
			}
			t.Logf("classes %d -> %d, states %d -> %d, feedback rounds %d",
				ccEager.Classes(), ccLoop.Classes(),
				eager.UniqueStates, loop.UniqueStates, loop.FeedbackRounds)
		})
	}
}
