// Differential parity for dynamic partial-order reduction: on every
// registered scenario, under both exhaustive engines, DPOR must report
// exactly the violated-property set of the unreduced search — same
// bugs, fewer interleavings. Warm shared discover caches pin down state
// identity (the same setting the COW and engine parity tests use). The
// random-walk engines ignore WithReduction (a walk is one
// interleaving; there is nothing to reduce), so the matrix covers
// SequentialDFS and ParallelHybrid.
package nice_test

import (
	"context"
	"testing"

	"github.com/nice-go/nice"
	"github.com/nice-go/nice/internal/core"
	"github.com/nice-go/nice/scenarios"
)

// dporParityEngines is the exhaustive-engine matrix for reduction
// parity.
var dporParityEngines = []struct {
	name string
	mk   func() nice.Engine
	eo   core.EngineOptions
}{
	{"SequentialDFS", nice.SequentialDFS, core.EngineOptions{}},
	{"ParallelHybrid", nice.ParallelHybrid, core.EngineOptions{Workers: 4}},
}

func TestDPORScenarioParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry × engine × reduction sweep is slow")
	}
	all := scenarios.All()
	if len(all) < 19 {
		t.Fatalf("registry holds %d scenarios, expected at least 19", len(all))
	}
	ctx := context.Background()
	for _, sc := range all {
		for _, eng := range dporParityEngines {
			sc, eng := sc, eng
			t.Run(sc.Name+"/"+eng.name, func(t *testing.T) {
				t.Parallel()
				build := func() *nice.Config {
					cfg := sc.Config(parityScales[sc.Name])
					cfg.StopAtFirstViolation = false
					return cfg
				}
				cc := nice.NewCaches()
				core.NewCheckerWith(build(), cc).Run() // warm the discover caches

				run := func(r nice.Reduction) *nice.Report {
					eo := eng.eo
					eo.Caches = cc
					eo.Reduction = r
					return eng.mk().Search(ctx, build(), eo)
				}
				full := run(nice.NoReduction)
				red := run(nice.DPOR)

				if !sameSet(violatedSet(full), violatedSet(red)) {
					t.Errorf("DPOR violations %v != unreduced %v",
						violatedSet(red), violatedSet(full))
				}
				if red.UniqueStates > full.UniqueStates {
					t.Errorf("DPOR explored more states than the full search: %d > %d",
						red.UniqueStates, full.UniqueStates)
				}
				// Transition counts are logged, not asserted: on
				// revisit-heavy scenarios the stateful sleep-set patch
				// may re-execute a handful of transitions during
				// signature re-expansion.
				t.Logf("states %d -> %d, transitions %d -> %d, violations %d",
					full.UniqueStates, red.UniqueStates,
					full.Transitions, red.Transitions, len(red.Violations))
			})
		}
	}
}
