// Benchmarks regenerating the paper's evaluation (§7–§8): one benchmark
// per table and figure, plus ablations of the design choices DESIGN.md
// §6 calls out. Run them all with
//
//	go test -bench=. -benchmem
//
// The benchmarks report, beyond ns/op, the search metrics the paper's
// tables hold: transitions, unique states, and (for Table 2) the
// transition count to the first violation.
package nice_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/nice-go/nice"
	"github.com/nice-go/nice/internal/bench"
	"github.com/nice-go/nice/internal/core"
	"github.com/nice-go/nice/internal/search"
	"github.com/nice-go/nice/internal/sym"
	"github.com/nice-go/nice/scenarios"
)

func reportSearch(b *testing.B, r *core.Report) {
	b.Helper()
	b.ReportMetric(float64(r.Transitions), "transitions")
	b.ReportMetric(float64(r.UniqueStates), "states")
}

// --- Table 1: NICE-MC vs NO-SWITCH-REDUCTION, layer-2 ping workload ---

func benchTable1(b *testing.B, pings int, noReduction bool) {
	var last *core.Report
	for i := 0; i < b.N; i++ {
		cfg := scenarios.PingPong(pings)
		cfg.NoSwitchReduction = noReduction
		last = core.NewChecker(cfg).Run()
	}
	reportSearch(b, last)
}

func BenchmarkTable1_NICEMC(b *testing.B) {
	for pings := 1; pings <= 3; pings++ {
		b.Run(fmt.Sprintf("pings=%d", pings), func(b *testing.B) {
			benchTable1(b, pings, false)
		})
	}
}

func BenchmarkTable1_NoSwitchReduction(b *testing.B) {
	for pings := 1; pings <= 3; pings++ {
		b.Run(fmt.Sprintf("pings=%d", pings), func(b *testing.B) {
			benchTable1(b, pings, true)
		})
	}
}

// --- Figure 6: strategy reductions on the same workload ---

func BenchmarkFigure6_NoDelay(b *testing.B) {
	for pings := 2; pings <= 3; pings++ {
		b.Run(fmt.Sprintf("pings=%d", pings), func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				cfg := scenarios.PingPong(pings)
				cfg.NoDelay = true
				last = core.NewChecker(cfg).Run()
			}
			reportSearch(b, last)
		})
	}
}

func BenchmarkFigure6_FlowIR(b *testing.B) {
	for pings := 2; pings <= 3; pings++ {
		b.Run(fmt.Sprintf("pings=%d", pings), func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				cfg := scenarios.PingPong(pings)
				cfg.FlowGroupKey = scenarios.PingGroup
				last = core.NewChecker(cfg).Run()
			}
			reportSearch(b, last)
		})
	}
}

// --- §7 comparison: the fine-grained off-the-shelf-style baseline ---

func BenchmarkBaselineFine(b *testing.B) {
	for pings := 1; pings <= 3; pings++ {
		b.Run(fmt.Sprintf("pings=%d", pings), func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				last = core.NewChecker(scenarios.BaselineFine(pings)).Run()
			}
			reportSearch(b, last)
		})
	}
}

// --- Table 2: time/transitions to the first violation, per bug and
// strategy. Missed cells report 0 found. ---

func BenchmarkTable2(b *testing.B) {
	for _, bug := range scenarios.AllBugs {
		for _, s := range scenarios.Strategies {
			bug, s := bug, s
			b.Run(fmt.Sprintf("%s/%s", bug, s), func(b *testing.B) {
				var last *core.Report
				for i := 0; i < b.N; i++ {
					cfg := scenarios.WithStrategy(scenarios.BugConfig(bug), bug, s)
					last = core.NewChecker(cfg).Run()
				}
				reportSearch(b, last)
				if last.FirstViolation() != nil {
					b.ReportMetric(1, "found")
				} else {
					b.ReportMetric(0, "found")
				}
			})
		}
	}
}

// --- Parallel search (internal/search) ---

// BenchmarkParallelSearch measures the work-stealing engine against the
// sequential reference (workers=1 delegates to core.Checker) on the
// scaled pyswitch Table-2 scenario, at 1, 4 and NumCPU workers. The
// wall-clock ratio between the workers=1 and workers=4 rows is the
// speedup the BENCH trajectory tracks; on a multi-core machine it
// should reach ≥2× at 4 workers (a single-core container can only show
// the engine's overhead).
func BenchmarkParallelSearch(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				cfg := scenarios.PyswitchBench(3)
				last = search.New(cfg, search.Options{Workers: workers}).Run()
			}
			reportSearch(b, last)
		})
	}
}

// BenchmarkParallelSwarm measures the seeded random-walk swarm on the
// same workload (walk i always runs seed+i; since this scenario runs
// with symbolic execution, trajectories may shift slightly with
// worker scheduling as the shared discover caches fill).
func BenchmarkParallelSwarm(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				cfg := scenarios.PyswitchBench(3)
				last = search.New(cfg, search.Options{
					Strategy: search.Swarm, Workers: workers,
					Seed: 1, Walks: 64, Steps: 80,
				}).Run()
			}
			reportSearch(b, last)
		})
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationCanonicalTable isolates the canonical-representation
// win at a fixed workload size.
func BenchmarkAblationCanonicalTable(b *testing.B) {
	for _, canonical := range []bool{true, false} {
		name := "canonical"
		if !canonical {
			name = "insertion-order"
		}
		b.Run(name, func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				cfg := scenarios.PingPong(3)
				cfg.NoSwitchReduction = !canonical
				last = core.NewChecker(cfg).Run()
			}
			reportSearch(b, last)
		})
	}
}

// BenchmarkAblationMicroSteps isolates the batched process_pkt
// transition against per-channel micro-steps.
func BenchmarkAblationMicroSteps(b *testing.B) {
	for _, micro := range []bool{false, true} {
		name := "batched"
		if micro {
			name = "micro-steps"
		}
		b.Run(name, func(b *testing.B) {
			var last *core.Report
			for i := 0; i < b.N; i++ {
				cfg := scenarios.PingPong(2)
				cfg.MicroSteps = micro
				last = core.NewChecker(cfg).Run()
			}
			reportSearch(b, last)
		})
	}
}

// BenchmarkAblationSE contrasts symbolic-execution packet discovery with
// the developer-supplied-repertoire strawman on the BUG-II hunt.
func BenchmarkAblationSE(b *testing.B) {
	b.Run("discover-packets", func(b *testing.B) {
		var last *core.Report
		for i := 0; i < b.N; i++ {
			last = core.NewChecker(scenarios.BugConfig(scenarios.BugII)).Run()
		}
		reportSearch(b, last)
		b.ReportMetric(float64(last.SERuns), "se-runs")
	})
	// The developer-supplied "relevant inputs" strawman (§2.2.1) in its
	// two outcomes: guessing the right packet finds the bug cheaply;
	// guessing wrong misses it entirely. discover_packets removes the
	// guess.
	b.Run("fixed-repertoire-lucky", func(b *testing.B) {
		var last *core.Report
		for i := 0; i < b.N; i++ {
			cfg := scenarios.BugConfig(scenarios.BugII)
			cfg.DisableSE = true
			cfg.Hosts[0].Repertoire = []nice.Header{cfg.Hosts[0].Seed}
			last = core.NewChecker(cfg).Run()
		}
		reportSearch(b, last)
		b.ReportMetric(b01(last.FirstViolation() != nil), "found")
	})
	b.Run("fixed-repertoire-wrong-guess", func(b *testing.B) {
		var last *core.Report
		for i := 0; i < b.N; i++ {
			cfg := scenarios.BugConfig(scenarios.BugII)
			cfg.DisableSE = true
			bcast := cfg.Hosts[0].Seed
			bcast.EthDst = nice.BroadcastEth
			cfg.Hosts[0].Repertoire = []nice.Header{bcast}
			last = core.NewChecker(cfg).Run()
		}
		reportSearch(b, last)
		b.ReportMetric(b01(last.FirstViolation() != nil), "found")
	})
}

func b01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkSolver measures the finite-domain solver on a representative
// path condition (three constrained MAC variables).
func BenchmarkSolver(b *testing.B) {
	problem := sym.Problem{
		Domains: []sym.Domain{
			{Var: "dl_src", Candidates: []uint64{2, 4, 6, 0xffffffffffff, 0x0abbccddee01}},
			{Var: "dl_dst", Candidates: []uint64{2, 4, 6, 0xffffffffffff, 0x0abbccddee01}},
			{Var: "dl_type", Candidates: []uint64{0x800, 0x806}},
		},
		Constraints: []sym.Expr{
			sym.Bin{Op: sym.OpEq, A: sym.Bin{Op: sym.OpAnd,
				A: sym.Bin{Op: sym.OpShr, A: sym.Var{Name: "dl_src"}, B: sym.Const(40)},
				B: sym.Const(1)}, B: sym.Const(0)},
			sym.Bin{Op: sym.OpNe, A: sym.Var{Name: "dl_dst"}, B: sym.Const(2)},
			sym.Bin{Op: sym.OpEq, A: sym.Var{Name: "dl_type"}, B: sym.Const(0x800)},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := sym.Solve(problem); !ok {
			b.Fatal("unsat")
		}
	}
}

// BenchmarkConcolicDiscovery measures one discover_packets execution
// (pyswitch handler, single-switch topology).
func BenchmarkConcolicDiscovery(b *testing.B) {
	cfg := scenarios.BugConfig(scenarios.BugII)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(cfg)
		if _, _, err := sim.Step(0); err != nil { // discover_packets
			b.Fatal(err)
		}
	}
}

// BenchmarkStateHash measures canonical serialization + hashing of a
// mid-search system state.
func BenchmarkStateHash(b *testing.B) {
	sim := core.NewSimulator(scenarios.PingPong(3))
	for i := 0; i < 6; i++ {
		if len(sim.Enabled()) == 0 {
			break
		}
		sim.Step(0)
	}
	sys := sim.System()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Hash()
	}
}

// BenchmarkHash compares the incremental fingerprint against the
// reflective full-reserialization oracle on identical mid-search states
// of the scaled pyswitch workload. Each measured op is one Fingerprint
// of a freshly forked child (clone + one applied transition, which
// dirties exactly the touched components); corpus rebuilding runs off
// the clock. The incremental/oracle states-per-second ratio is the
// BENCH trajectory's hash-speedup headline (≥2x required).
func BenchmarkHash(b *testing.B) {
	for _, mode := range []string{"incremental", "reflective-oracle"} {
		b.Run(mode, func(b *testing.B) {
			hc := bench.NewHashCorpus(mode == "reflective-oracle")
			b.ReportAllocs()
			b.ResetTimer()
			i := 0
			for n := 0; n < b.N; n++ {
				if i == 0 {
					b.StopTimer()
					hc.Rebuild(n)
					b.StartTimer()
				}
				_ = hc.Children[i].Fingerprint()
				i = (i + 1) % bench.HashBatch
			}
			b.ReportMetric(float64(time.Second)/float64(b.Elapsed())*float64(b.N), "states-hashed/sec")
		})
	}
}

// BenchmarkStateKey contrasts the cached canonical rendering with the
// old from-scratch render on a warm mid-search state.
func BenchmarkStateKey(b *testing.B) {
	sim := core.NewSimulator(scenarios.PyswitchBench(3))
	for i := 0; i < 10; i++ {
		enabled := sim.Enabled()
		if len(enabled) == 0 {
			break
		}
		sim.Step(i % len(enabled))
	}
	sys := sim.System()
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sys.StateKey()
		}
	})
	b.Run("reflective-oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sys.OracleKey()
		}
	})
}

// BenchmarkClone measures the per-transition state fork.
func BenchmarkClone(b *testing.B) {
	sim := core.NewSimulator(scenarios.PingPong(3))
	for i := 0; i < 6; i++ {
		if len(sim.Enabled()) == 0 {
			break
		}
		sim.Step(0)
	}
	sys := sim.System()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Clone()
	}
}

// BenchmarkRandomWalk measures the simulator's random-walk mode.
func BenchmarkRandomWalk(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		nice.Run(ctx, scenarios.PingPong(2), nice.WithWalks(int64(i), 10, 50))
	}
}
