package nice

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nice-go/nice/internal/telemetry"
	"github.com/nice-go/nice/scenarios"
)

// CampaignJob names one search of a campaign: a registered scenario at
// a scale, under one Table 2 strategy column, buggy or repaired.
type CampaignJob struct {
	// Scenario is the registry name (scenarios.Lookup key).
	Scenario string `json:"scenario"`
	// Scale is the scenario's scale knob (0 = scenario default).
	Scale int `json:"scale,omitempty"`
	// Strategy is the search strategy column ("" = pkt-seq).
	Strategy string `json:"strategy,omitempty"`
	// Fixed checks the repaired application instead of the buggy one.
	Fixed bool `json:"fixed,omitempty"`
}

func (j CampaignJob) label() string {
	s := j.Scenario
	if j.Scale > 0 {
		// Only claim a scale the scenario will actually apply — a
		// campaign-wide scale over mixed jobs leaves scale-less
		// scenarios at their fixed size.
		if sc, ok := scenarios.Lookup(j.Scenario); !ok || sc.ScaleName != "" {
			s = fmt.Sprintf("%s(%d)", s, j.Scale)
		}
	}
	if strat, ok := scenarios.ParseStrategy(j.Strategy); ok {
		s += "/" + strat.String()
	} else {
		// Keep the unknown spelling so the error row names what the
		// job actually asked for.
		s += "/" + j.Strategy
	}
	if j.Fixed {
		s += "/fixed"
	}
	return s
}

// Campaign fans a set of scenario × strategy jobs through Run
// concurrently, under shared budgets, and merges the outcomes into one
// report — the fleet mode behind `nice run-all`.
//
// Budgets compose per job and campaign-wide: JobTimeout / JobMaxStates
// bound each search individually, TotalMaxStates / TotalMaxTransitions
// are drawn down by every completed search (later jobs start with
// whatever remains; concurrent jobs may collectively overshoot by at
// most Parallelism × the per-job overshoot), and cancelling ctx stops
// everything — each cut-short search still reports a partial,
// replayable result.
type Campaign struct {
	// Jobs lists the searches to run. CampaignJobs builds the
	// scenario × strategy cross product.
	Jobs []CampaignJob

	// Parallelism bounds the number of concurrently running jobs
	// (0 or 1 = one at a time).
	Parallelism int

	// Workers is the per-job engine worker count, as in WithWorkers
	// (0 = all CPUs, 1 = the sequential reference checker).
	Workers int

	// JobTimeout bounds each job's wall clock (0 = unbounded).
	JobTimeout time.Duration
	// JobMaxStates bounds each job's unique states (0 = unbounded).
	JobMaxStates int64

	// TotalMaxStates / TotalMaxTransitions are shared campaign-wide
	// budgets (0 = unbounded).
	TotalMaxStates      int64
	TotalMaxTransitions int64

	// ShareCaches shares one discover-cache set between jobs of the
	// same scenario/scale/fixed triple, so the strategy columns of one
	// workload reuse each other's symbolic-execution results.
	ShareCaches bool

	// CachePrune bounds each shared discover-cache set when ShareCaches
	// is on: after a job finishes, a set grown past CachePrune entries
	// is emptied, counted and traced as cache evictions. Pruning is safe
	// at any time, including while concurrent jobs are mid-search —
	// eviction costs a running search re-discovery work, never soundness
	// (see Caches) — so the bound applies at every Parallelism.
	CachePrune int

	// OnJobStart / OnJobDone, when non-nil, observe the job lifecycle:
	// OnJobStart fires as a worker picks up Jobs[i], OnJobDone after its
	// result is final. Both may be called concurrently from different
	// workers (Parallelism > 1) and must be safe for concurrent use.
	OnJobStart func(i int, job CampaignJob)
	OnJobDone  func(i int, res CampaignResult)

	// Telemetry, when non-nil, receives campaign-level aggregation under
	// the "campaign" scope: job and outcome counters, cumulative state
	// and transition counts, live budget-drawdown gauges and per-job
	// trace events. Engine-level metrics stay per job — each job runs
	// against a private registry surfaced through CampaignResult; pass
	// WithTelemetry in Run's extra options to redirect every job's
	// engine metrics to one registry you own instead.
	Telemetry *Telemetry
}

// CampaignJobs builds the scenario × strategy cross product with a
// fixed scale: the common way to fill Campaign.Jobs.
func CampaignJobs(scenarioNames, strategies []string, scale int, fixed bool) []CampaignJob {
	if len(strategies) == 0 {
		strategies = []string{""}
	}
	jobs := make([]CampaignJob, 0, len(scenarioNames)*len(strategies))
	for _, sc := range scenarioNames {
		for _, st := range strategies {
			jobs = append(jobs, CampaignJob{Scenario: sc, Scale: scale, Strategy: st, Fixed: fixed})
		}
	}
	return jobs
}

// Job outcomes.
const (
	// OutcomeFound: the expected property violation was found.
	OutcomeFound = "found-expected"
	// OutcomeClean: no violation, none expected.
	OutcomeClean = "clean"
	// OutcomeMissedExpected: no violation, and this strategy column is
	// documented to miss this scenario's bug (a Table 2 blank cell).
	OutcomeMissedExpected = "missed-expected"
	// OutcomeMissed: the search completed without finding the
	// scenario's expected violation — an unexpected miss.
	OutcomeMissed = "missed"
	// OutcomeUnexpected: a violation was found where none (or a
	// documented miss) was expected.
	OutcomeUnexpected = "unexpected-violation"
	// OutcomePartial: a per-job budget, deadline or cancellation cut
	// the search short before it could decide.
	OutcomePartial = "partial"
	// OutcomeStarved: the campaign-wide TotalMaxStates /
	// TotalMaxTransitions drawdown ran out before or during this job —
	// the job is undecided because earlier jobs consumed the shared
	// budget, not because of its own limits or a real violation.
	OutcomeStarved = "budget-starved"
	// OutcomeError: the job could not run (unknown scenario, no
	// repaired variant, unknown strategy).
	OutcomeError = "error"
)

// CampaignResult is one job's outcome.
type CampaignResult struct {
	Job   CampaignJob `json:"job"`
	Label string      `json:"label"`

	// Expected names the property the job was expected to violate
	// ("" for expected-clean searches, including all fixed jobs);
	// ExpectedMiss marks strategy columns documented to miss it.
	Expected     string `json:"expected,omitempty"`
	ExpectedMiss bool   `json:"expected_miss,omitempty"`

	// Outcome is one of the Outcome* constants; Err carries the
	// detail for OutcomeError.
	Outcome string `json:"outcome"`
	Err     string `json:"error,omitempty"`

	// Violated lists the distinct violated property names; First is
	// the first violation's message.
	Violated []string `json:"violated,omitempty"`
	First    string   `json:"first_violation,omitempty"`

	// Search counters, from the underlying Report.
	Transitions  int64         `json:"transitions"`
	UniqueStates int64         `json:"unique_states"`
	SERuns       int64         `json:"se_runs"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Engine       string        `json:"engine,omitempty"`
	Complete     bool          `json:"complete"`
	StopReason   string        `json:"stop_reason,omitempty"`

	// StatesPerSec is the job's unique-state throughput — the
	// campaign-level view of the copy-on-write forking win, without a
	// separate bench run.
	StatesPerSec float64 `json:"states_per_sec"`
	// PeakHeapBytes is the peak in-use heap sampled while the job ran.
	// The measurement is process-wide: jobs running concurrently
	// (Parallelism > 1) share the heap, so treat it as an envelope.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// CacheHitRate is the discover-cache hit fraction over the job's
	// lookups (0 when the job made none).
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// COWForks / COWCopies count the job's copy-on-write state forks and
	// lazy component copies. Zero when the job ran under a
	// caller-supplied telemetry registry — the counts then accumulate
	// there instead.
	COWForks  int64 `json:"cow_forks,omitempty"`
	COWCopies int64 `json:"cow_copies,omitempty"`
}

// ok reports whether the outcome matches expectations (partial results
// are inconclusive, not failures).
func (r *CampaignResult) ok() bool {
	switch r.Outcome {
	case OutcomeFound, OutcomeClean, OutcomeMissedExpected, OutcomePartial, OutcomeStarved:
		return true
	}
	return false
}

// CampaignReport merges every job's result.
type CampaignReport struct {
	Results []CampaignResult `json:"results"`

	// Merged counters across all jobs.
	Jobs         int           `json:"jobs"`
	Transitions  int64         `json:"transitions"`
	UniqueStates int64         `json:"unique_states"`
	Violations   int           `json:"violations"`
	Unexpected   int           `json:"unexpected"`
	Partial      int           `json:"partial"`
	Starved      int           `json:"starved,omitempty"`
	Elapsed      time.Duration `json:"elapsed_ns"`
}

// OK reports whether every job's outcome matched its expectation
// (inconclusive partial and budget-starved results count as OK; see
// Partial and Starved).
func (r *CampaignReport) OK() bool { return r.Unexpected == 0 }

// ExitCode maps the merged report onto the `nice run-all` process exit
// contract, so scripts can tell a campaign that ran out of shared
// budget from one that found a real problem: 0 = every outcome as
// expected; 1 = an unexpected outcome (missed bug, unexpected
// violation, job error); 4 = expectations met so far but the
// campaign-wide budget drawdown starved at least one job; 3 =
// expectations met so far but some searches were cut short by per-job
// budgets or deadlines (inconclusive).
func (r *CampaignReport) ExitCode() int {
	switch {
	case !r.OK():
		return 1
	case r.Starved > 0:
		return 4
	case r.Partial > 0:
		return 3
	}
	return 0
}

// WriteJSON writes the merged report as indented JSON.
func (r *CampaignReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the merged report as an aligned text table plus a
// one-line summary.
func (r *CampaignReport) WriteText(w io.Writer) {
	width := len("scenario")
	for i := range r.Results {
		if n := len(r.Results[i].Label); n > width {
			width = n
		}
	}
	fmt.Fprintf(w, "%-*s  %-20s %12s %12s %10s %10s %9s %5s  %s\n",
		width, "scenario", "outcome", "transitions", "states", "states/s", "elapsed", "peak-heap", "hit%", "detail")
	for i := range r.Results {
		res := &r.Results[i]
		detail := ""
		switch {
		case res.Err != "":
			detail = res.Err
		case len(res.Violated) > 0:
			detail = "violates " + res.Violated[0]
			if len(res.Violated) > 1 {
				detail += fmt.Sprintf(" (+%d more)", len(res.Violated)-1)
			}
		case res.Outcome == OutcomePartial, res.Outcome == OutcomeStarved:
			detail = "stopped: " + res.StopReason
		}
		fmt.Fprintf(w, "%-*s  %-20s %12d %12d %10.0f %10s %9s %4.0f%%  %s\n",
			width, res.Label, res.Outcome, res.Transitions, res.UniqueStates,
			res.StatesPerSec, res.Elapsed.Round(time.Millisecond),
			formatBytes(res.PeakHeapBytes), res.CacheHitRate*100, detail)
	}
	fmt.Fprintf(w, "\n%d jobs: %d violations, %d unexpected, %d partial — %d transitions, %d unique states in %s\n",
		r.Jobs, r.Violations, r.Unexpected, r.Partial,
		r.Transitions, r.UniqueStates, r.Elapsed.Round(time.Millisecond))
}

// formatBytes renders a byte count compactly for the text table.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// finalProgressCapture retains the engine's Final progress snapshot —
// the source of the job's StatesPerSec / PeakHeapBytes / CacheHitRate
// columns. The engines guarantee exactly one Final snapshot, emitted
// after the workers drain, so no lock ordering races with the report.
type finalProgressCapture struct {
	mu   sync.Mutex
	last Progress
	got  bool
}

func (f *finalProgressCapture) OnViolation(Violation) {}

func (f *finalProgressCapture) OnProgress(p Progress) {
	if !p.Final {
		return
	}
	f.mu.Lock()
	f.last, f.got = p, true
	f.mu.Unlock()
}

func (f *finalProgressCapture) final() (Progress, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.got
}

// teeObserver fans one search's stream to two observers (the campaign's
// capture plus a caller-supplied observer).
type teeObserver struct {
	a, b Observer
}

func (t teeObserver) OnViolation(v Violation) {
	t.a.OnViolation(v)
	t.b.OnViolation(v)
}

func (t teeObserver) OnProgress(p Progress) {
	t.a.OnProgress(p)
	t.b.OnProgress(p)
}

// campaignTelemetry is the campaign-scope handle bundle on the
// campaign-wide registry; nil (no Campaign.Telemetry) keeps every call
// a single branch, matching the engines' disabled fast path.
type campaignTelemetry struct {
	scope       *telemetry.Scope
	jobs        *telemetry.Counter
	violations  *telemetry.Counter
	states      *telemetry.Counter
	transitions *telemetry.Counter
	statesLeft  *telemetry.Gauge
	transLeft   *telemetry.Gauge
}

func newCampaignTelemetry(reg *Telemetry) *campaignTelemetry {
	if reg == nil {
		return nil
	}
	sc := reg.Scope("campaign")
	return &campaignTelemetry{
		scope:       sc,
		jobs:        sc.Counter("jobs"),
		violations:  sc.Counter("violations"),
		states:      sc.Counter("unique_states"),
		transitions: sc.Counter("transitions"),
		statesLeft:  sc.Gauge("states_left"),
		transLeft:   sc.Gauge("trans_left"),
	}
}

func (t *campaignTelemetry) jobStart(label string) {
	if t == nil {
		return
	}
	t.scope.Emit(telemetry.TraceSearchStart, 0, label)
}

// jobDone aggregates one finished job and records the campaign-wide
// budget drawdown.
func (t *campaignTelemetry) jobDone(res *CampaignResult, statesLeft, transLeft int64) {
	if t == nil {
		return
	}
	t.jobs.Inc()
	t.violations.Add(int64(len(res.Violated)))
	t.states.Add(res.UniqueStates)
	t.transitions.Add(res.Transitions)
	t.statesLeft.Set(statesLeft)
	t.transLeft.Set(transLeft)
	t.scope.Counter("outcome_" + res.Outcome).Inc()
	t.scope.Emit(telemetry.TraceSearchStop, res.UniqueStates,
		res.Label+" "+res.Outcome)
}

// cacheKey groups jobs that may share a discover-cache set.
type cacheKey struct {
	scenario string
	scale    int
	fixed    bool
}

// Run executes the campaign: every job goes through Run (the unified
// engine entry point) with the campaign's budgets applied, at most
// Parallelism at a time. Extra opts are appended to every job's Run
// options (an Observer passed this way must be safe for concurrent use
// across jobs). Results keep Jobs order regardless of scheduling.
func (c *Campaign) Run(ctx context.Context, opts ...RunOption) *CampaignReport {
	start := time.Now()
	report := &CampaignReport{
		Results: make([]CampaignResult, len(c.Jobs)),
		Jobs:    len(c.Jobs),
	}

	var statesLeft, transLeft atomic.Int64
	statesLeft.Store(c.TotalMaxStates)
	transLeft.Store(c.TotalMaxTransitions)
	ct := newCampaignTelemetry(c.Telemetry)

	var cachesMu sync.Mutex
	caches := make(map[cacheKey]*Caches)
	jobCaches := func(j CampaignJob) *Caches {
		if !c.ShareCaches {
			return nil
		}
		cachesMu.Lock()
		defer cachesMu.Unlock()
		k := cacheKey{scenario: j.Scenario, scale: j.Scale, fixed: j.Fixed}
		if caches[k] == nil {
			caches[k] = NewCaches()
		}
		return caches[k]
	}

	par := c.Parallelism
	if par < 1 {
		par = 1
	}
	if par > len(c.Jobs) {
		par = len(c.Jobs)
	}
	// Workers pull jobs in declaration order, so budgets drain
	// front-to-back (and Parallelism=1 is fully deterministic).
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(c.Jobs) {
					return
				}
				ct.jobStart(c.Jobs[i].label())
				if c.OnJobStart != nil {
					c.OnJobStart(i, c.Jobs[i])
				}
				res := c.runJob(ctx, c.Jobs[i], &statesLeft, &transLeft, jobCaches, opts)
				ct.jobDone(&res, statesLeft.Load(), transLeft.Load())
				report.Results[i] = res
				if c.OnJobDone != nil {
					c.OnJobDone(i, res)
				}
			}
		}()
	}
	wg.Wait()

	for i := range report.Results {
		res := &report.Results[i]
		report.Transitions += res.Transitions
		report.UniqueStates += res.UniqueStates
		report.Violations += len(res.Violated)
		if !res.ok() {
			report.Unexpected++
		}
		if res.Outcome == OutcomePartial {
			report.Partial++
		}
		if res.Outcome == OutcomeStarved {
			report.Starved++
		}
	}
	report.Elapsed = time.Since(start)
	return report
}

// runJob builds, budgets and runs one job, classifying the outcome. A
// Build hook panicking on an invalid scale becomes a job error, not a
// dead campaign.
func (c *Campaign) runJob(ctx context.Context, job CampaignJob, statesLeft, transLeft *atomic.Int64, jobCaches func(CampaignJob) *Caches, extra []RunOption) (res CampaignResult) {
	res = CampaignResult{Job: job, Label: job.label()}
	fail := func(format string, args ...any) CampaignResult {
		res.Outcome = OutcomeError
		res.Err = fmt.Sprintf(format, args...)
		return res
	}
	defer func() {
		if r := recover(); r != nil {
			res = fail("%v", r)
		}
	}()

	sc, ok := scenarios.Lookup(job.Scenario)
	if !ok {
		return fail("unknown scenario %q", job.Scenario)
	}
	strat, ok := scenarios.ParseStrategy(job.Strategy)
	if !ok {
		return fail("unknown strategy %q", job.Strategy)
	}
	var cfg *Config
	if job.Fixed {
		if cfg = sc.FixedConfig(job.Scale); cfg == nil {
			return fail("scenario %q has no repaired variant", sc.Name)
		}
	} else {
		cfg = sc.Config(job.Scale)
		res.Expected = sc.ExpectedProperty
		res.ExpectedMiss = sc.Misses[strat]
	}
	cfg = sc.Apply(cfg, strat)

	// Normalize the scale before cache grouping, so Scale:0 and an
	// explicit Scale:DefaultScale of one workload share caches — and
	// scale-less scenarios (whose Build ignores Scale entirely) group
	// regardless of the requested value.
	cacheJob := job
	switch {
	case sc.ScaleName == "":
		cacheJob.Scale = 0
	case cacheJob.Scale <= 0:
		cacheJob.Scale = sc.DefaultScale
	}
	cc := jobCaches(cacheJob)

	// Shared-drawdown accounting. A job that finds the pool already
	// exhausted never runs: it is budget-starved, a distinct outcome
	// from partial (its own budgets) and from a real violation. A job
	// whose binding state/transition limit came from the drawdown — not
	// its own JobMaxStates — and that stops on that limit is starved
	// too: it ran out of other jobs' leftovers, not its own allowance.
	if (c.TotalMaxStates > 0 && statesLeft.Load() <= 0) ||
		(c.TotalMaxTransitions > 0 && transLeft.Load() <= 0) {
		res.Outcome = OutcomeStarved
		res.StopReason = "drawdown"
		return res
	}

	opts := []RunOption{WithWorkers(c.Workers)}
	if c.JobTimeout > 0 {
		opts = append(opts, WithDeadline(c.JobTimeout))
	}
	var drawdownStates, drawdownTrans bool
	maxStates := c.JobMaxStates
	if c.TotalMaxStates > 0 {
		if left := statesLeft.Load(); maxStates == 0 || left < maxStates {
			maxStates = left
			drawdownStates = true
		}
	}
	if maxStates > 0 {
		opts = append(opts, WithMaxStates(maxStates))
	}
	if c.TotalMaxTransitions > 0 {
		drawdownTrans = true
		opts = append(opts, WithMaxTransitions(transLeft.Load()))
	}
	if cc != nil {
		opts = append(opts, WithCaches(cc))
	}
	opts = append(opts, extra...)

	// Split any caller-supplied observer and registry out of the extra
	// options, so the campaign's own capture and per-job registry tee
	// with them instead of replacing them.
	var scratch runSettings
	for _, o := range extra {
		o(&scratch)
	}
	reg := scratch.eo.Telemetry
	ownReg := reg == nil
	if ownReg {
		reg = NewTelemetry()
	}
	capt := &finalProgressCapture{}
	var obs Observer = capt
	if scratch.eo.Observer != nil {
		obs = teeObserver{a: scratch.eo.Observer, b: capt}
	}
	opts = append(opts, WithTelemetry(reg), WithObserver(obs))

	r := Run(ctx, cfg, opts...)
	statesLeft.Add(-r.UniqueStates)
	transLeft.Add(-r.Transitions)
	if cc != nil && c.CachePrune > 0 {
		cc.Prune(c.CachePrune)
	}

	res.Transitions = r.Transitions
	res.UniqueStates = r.UniqueStates
	res.SERuns = r.SERuns
	res.Elapsed = r.Elapsed
	res.Engine = r.Strategy
	res.Complete = r.Complete
	res.StopReason = string(r.StopReason)
	if p, ok := capt.final(); ok {
		res.StatesPerSec = p.StatesPerSec
		res.PeakHeapBytes = p.PeakHeapInUse
		res.CacheHitRate = p.CacheHitRate
	} else if secs := r.Elapsed.Seconds(); secs > 0 {
		res.StatesPerSec = float64(r.UniqueStates) / secs
	}
	if ownReg {
		snap := reg.Snapshot()
		res.COWForks = snap.Counter("cow.forks")
		res.COWCopies = snap.Counter("cow.ensure_owned_copies")
	}

	seen := map[string]bool{}
	for i := range r.Violations {
		p := r.Violations[i].Property
		if !seen[p] {
			seen[p] = true
			res.Violated = append(res.Violated, p)
		}
	}
	sort.Strings(res.Violated)
	if v := r.FirstViolation(); v != nil {
		res.First = fmt.Sprintf("%s: %v", v.Property, v.Err)
	}

	res.Outcome = classify(&res)
	if res.Outcome == OutcomePartial {
		if (drawdownStates && r.StopReason == StopMaxStates) ||
			(drawdownTrans && r.StopReason == StopMaxTransitions) {
			res.Outcome = OutcomeStarved
		}
	}
	return res
}

// classify derives the job outcome from expectations and the report.
func classify(res *CampaignResult) string {
	found := len(res.Violated) > 0
	expectedFound := false
	for _, p := range res.Violated {
		if p == res.Expected {
			expectedFound = true
		}
	}
	switch {
	case found && expectedFound && !res.ExpectedMiss && len(res.Violated) == 1:
		return OutcomeFound
	case found:
		// A violation where none was expected — a fixed app failing, a
		// documented-miss column finding the bug anyway, or a property
		// other than (or beside) the expected one tripping.
		return OutcomeUnexpected
	case !res.Complete:
		return OutcomePartial
	case res.Expected == "":
		return OutcomeClean
	case res.ExpectedMiss:
		return OutcomeMissedExpected
	default:
		return OutcomeMissed
	}
}
